// Tests for Asynchronous SecAgg (Sec. 5, App. B-D): group arithmetic,
// fixed-point conversion, one-time pads, the full client/TSA/server protocol
// including abort conditions, threshold enforcement, one-shot release, and
// the boundary-traffic asymptotics of Fig. 6.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <span>

#include "secagg/attestation.hpp"
#include "secagg/fixed_point.hpp"
#include "secagg/group.hpp"
#include "secagg/otp.hpp"
#include "secagg/secagg_batch.hpp"
#include "secagg/secagg_client.hpp"
#include "secagg/secagg_server.hpp"
#include "secagg/tsa.hpp"
#include "util/rng.hpp"

namespace papaya::secagg {
namespace {

using crypto::DhParams;
using crypto::VerifiableLog;

// ------------------------------------------------------------------ Group --

TEST(Group, AddWrapsAround) {
  const GroupVec a{0xffffffffu, 1u};
  const GroupVec b{1u, 2u};
  const GroupVec sum = add(a, b);
  EXPECT_EQ(sum[0], 0u);
  EXPECT_EQ(sum[1], 3u);
}

TEST(Group, SubIsInverseOfAdd) {
  util::Rng rng(1);
  GroupVec a(100), b(100);
  for (auto& x : a) x = static_cast<std::uint32_t>(rng.next());
  for (auto& x : b) x = static_cast<std::uint32_t>(rng.next());
  EXPECT_EQ(sub(add(a, b), b), a);
}

TEST(Group, SizeMismatchThrows) {
  GroupVec a{1, 2}, b{1};
  EXPECT_THROW(add(a, b), std::invalid_argument);
  EXPECT_THROW(add_in_place(a, b), std::invalid_argument);
}

// ------------------------------------------------------------ Fixed point --

TEST(FixedPoint, EncodeDecodeRoundTripWithinResolution) {
  FixedPointParams params;  // scale 2^16
  for (double v : {0.0, 1.0, -1.0, 0.5, -0.5, 1234.5678, -999.25}) {
    const double decoded = decode_value(encode_value(v, params), params);
    EXPECT_NEAR(decoded, v, 1.0 / params.scale);
  }
}

TEST(FixedPoint, NegativeValuesUseTwosComplement) {
  FixedPointParams params;
  params.scale = 1.0;
  EXPECT_EQ(encode_value(-1.0, params), 0xffffffffu);
  EXPECT_DOUBLE_EQ(decode_value(0xffffffffu, params), -1.0);
}

TEST(FixedPoint, AdditionHomomorphismProperty) {
  // sum of encodings decodes to sum of values (the property the whole
  // protocol rests on), for random bounded values.
  util::Rng rng(2);
  const FixedPointParams params = FixedPointParams::for_budget(1.0, 64);
  for (int iter = 0; iter < 50; ++iter) {
    GroupVec acc(1, 0);
    double expected = 0.0;
    for (int i = 0; i < 64; ++i) {
      const double v = rng.uniform(-1.0, 1.0);
      expected += v;
      acc[0] += encode_value(v, params);
    }
    EXPECT_NEAR(decode_value(acc[0], params), expected,
                64.0 / params.scale + 1e-9);
  }
}

TEST(FixedPoint, OutOfRangeEncodeThrows) {
  FixedPointParams params;  // scale 2^16: max ~ 32767
  EXPECT_THROW(encode_value(1e6, params), std::range_error);
  EXPECT_THROW(encode_value(-1e6, params), std::range_error);
}

TEST(FixedPoint, BudgetLeavesHeadroom) {
  const FixedPointParams p = FixedPointParams::for_budget(2.0, 1000);
  EXPECT_GE(p.max_aggregatable_magnitude(), 2.0 * 1000);
}

TEST(FixedPoint, VectorEncodeDecode) {
  FixedPointParams params;
  const std::vector<float> values{0.25f, -0.75f, 3.5f};
  const auto decoded = decode(encode(values, params), params);
  ASSERT_EQ(decoded.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(decoded[i], values[i], 1.0 / params.scale);
  }
}

// -------------------------------------------------------------------- OTP --

TEST(Otp, MaskUnmaskIdentity) {
  Seed seed{};
  seed.fill(0x42);
  util::Rng rng(3);
  GroupVec plaintext(257);
  for (auto& x : plaintext) x = static_cast<std::uint32_t>(rng.next());
  const GroupVec masked = mask(plaintext, seed);
  EXPECT_NE(masked, plaintext);
  const GroupVec m = expand_mask(seed, plaintext.size());
  EXPECT_EQ(unmask(masked, m), plaintext);
}

TEST(Otp, HomomorphicAggregation) {
  // Fig. 14: sum of ciphertexts minus sum of masks == sum of plaintexts.
  util::Rng rng(4);
  const std::size_t l = 64, n = 10;
  GroupVec ciphertext_sum(l, 0), mask_sum(l, 0), expected(l, 0);
  for (std::size_t i = 0; i < n; ++i) {
    Seed seed{};
    for (auto& b : seed) b = static_cast<std::uint8_t>(rng.next());
    GroupVec v(l);
    for (auto& x : v) x = static_cast<std::uint32_t>(rng.next());
    add_in_place(expected, v);
    add_in_place(ciphertext_sum, mask(v, seed));
    add_in_place(mask_sum, expand_mask(seed, l));
  }
  EXPECT_EQ(unmask(ciphertext_sum, mask_sum), expected);
}

TEST(Otp, MaskExpansionDeterministic) {
  Seed seed{};
  seed.fill(0x11);
  EXPECT_EQ(expand_mask(seed, 100), expand_mask(seed, 100));
}

TEST(Otp, ExpandMasksMatchesPerSeedExpansion) {
  // Property: the multi-stream batch path is bit-identical to per-seed
  // expansion, across seed counts straddling the 8-lane tile and lengths
  // straddling ChaCha20 block boundaries.
  util::Rng rng(6);
  for (const std::size_t count : {0UL, 1UL, 5UL, 8UL, 9UL, 17UL}) {
    for (const std::size_t length : {0UL, 1UL, 15UL, 16UL, 100UL, 1000UL}) {
      std::vector<Seed> seeds(count);
      for (auto& seed : seeds) {
        for (auto& b : seed) b = static_cast<std::uint8_t>(rng.next());
      }
      const auto batched = expand_masks(seeds, length);
      ASSERT_EQ(batched.size(), count);
      for (std::size_t s = 0; s < count; ++s) {
        EXPECT_EQ(batched[s], expand_mask(seeds[s], length))
            << "count " << count << " length " << length << " seed " << s;
      }
    }
  }
}

TEST(Otp, AccumulateMasksMatchesSequentialFold) {
  util::Rng rng(7);
  for (const std::size_t count : {1UL, 3UL, 8UL, 12UL}) {
    // 5000 words spans multiple accumulation chunks (2048-word scratch).
    const std::size_t length = 5000;
    std::vector<Seed> seeds(count);
    for (auto& seed : seeds) {
      for (auto& b : seed) b = static_cast<std::uint8_t>(rng.next());
    }
    GroupVec expected(length, 123u), actual(length, 123u);
    for (const Seed& seed : seeds) {
      add_in_place(expected, expand_mask(seed, length));
    }
    accumulate_masks(seeds, actual);
    EXPECT_EQ(actual, expected) << "count " << count;
  }
}

TEST(Group, AddRowsMatchesSequentialAdds) {
  util::Rng rng(8);
  const std::size_t length = 9000;  // spans multiple 4096-word fold blocks
  std::vector<GroupVec> rows(5, GroupVec(length));
  for (auto& row : rows) {
    for (auto& x : row) x = static_cast<std::uint32_t>(rng.next());
  }
  GroupVec expected(length, 7u), actual(length, 7u);
  std::vector<const std::uint32_t*> row_ptrs;
  for (const auto& row : rows) {
    add_in_place(expected, row);
    row_ptrs.push_back(row.data());
  }
  add_rows_in_place(actual, row_ptrs);
  EXPECT_EQ(actual, expected);
}

// ------------------------------------------------------------ Attestation --

TEST(Attestation, QuoteVerifies) {
  const SimulatedEnclavePlatform platform(7);
  const auto quote = platform.sign_quote(crypto::Sha256::hash(std::string("bin")),
                                         crypto::Sha256::hash(std::string("params")),
                                         crypto::Sha256::hash(std::string("dh")));
  EXPECT_TRUE(platform.verify_quote(quote));
}

TEST(Attestation, ForgedQuoteRejected) {
  const SimulatedEnclavePlatform platform(7);
  auto quote = platform.sign_quote(crypto::Sha256::hash(std::string("bin")),
                                   crypto::Sha256::hash(std::string("params")),
                                   crypto::Sha256::hash(std::string("dh")));
  quote.binary_measurement[0] ^= 1;
  EXPECT_FALSE(platform.verify_quote(quote));
}

TEST(Attestation, QuoteFromDifferentPlatformRejected) {
  const SimulatedEnclavePlatform real(7), fake(8);
  const auto quote = fake.sign_quote(crypto::Sha256::hash(std::string("bin")),
                                     crypto::Sha256::hash(std::string("params")),
                                     crypto::Sha256::hash(std::string("dh")));
  EXPECT_FALSE(real.verify_quote(quote));
}

// ------------------------------------------------- Full protocol fixture --

struct ProtocolWorld {
  const DhParams& dh = DhParams::simulation256();
  SimulatedEnclavePlatform platform{101};
  crypto::Digest binary = crypto::Sha256::hash(std::string("papaya-tsa-binary-v1"));
  VerifiableLog log;
  crypto::InclusionProof binary_proof;
  SecAggParams params;
  FixedPointParams fp;
  std::unique_ptr<TrustedSecureAggregator> tsa;
  QuoteExpectations expectations;

  ProtocolWorld(std::size_t length, std::size_t threshold, std::size_t n_msgs) {
    params.vector_length = length;
    params.threshold = threshold;
    fp = FixedPointParams::for_budget(1.0, 4096);
    log.append(binary);
    binary_proof = log.prove_inclusion(0);
    tsa = std::make_unique<TrustedSecureAggregator>(dh, params, n_msgs,
                                                    platform, binary, 2024);
    expectations.expected_params_hash = params.hash(dh);
    expectations.log_snapshot = log.snapshot();
  }

  std::optional<ClientContribution> client_contribution(
      std::uint64_t client_id, std::span<const float> update) {
    SecAggClient client(dh, fp, client_id);
    return client.prepare_contribution(
        platform, expectations, tsa->initial_messages().at(client_id),
        binary_proof, update);
  }
};

TEST(Protocol, EndToEndSumMatchesPlaintextSum) {
  const std::size_t length = 32, n = 5;
  ProtocolWorld world(length, n, 16);
  SecureAggregationSession session(*world.tsa, length, n);

  util::Rng rng(5);
  std::vector<float> expected(length, 0.0f);
  for (std::uint64_t c = 0; c < n; ++c) {
    std::vector<float> update(length);
    for (std::size_t i = 0; i < length; ++i) {
      update[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
      expected[i] += update[i];
    }
    const auto contribution = world.client_contribution(c, update);
    ASSERT_TRUE(contribution.has_value());
    EXPECT_EQ(session.accept(*contribution), TsaAccept::kAccepted);
  }
  EXPECT_TRUE(session.goal_reached());
  const auto sum = session.finalize_decoded(world.fp);
  ASSERT_TRUE(sum.has_value());
  for (std::size_t i = 0; i < length; ++i) {
    EXPECT_NEAR((*sum)[i], expected[i], n / world.fp.scale + 1e-4);
  }
}

TEST(Protocol, MaskedUpdateDoesNotRevealPlaintext) {
  // Sanity privacy check: a masked update of all-zeros must look nothing
  // like the encoding of all-zeros.
  const std::size_t length = 128;
  ProtocolWorld world(length, 1, 4);
  const std::vector<float> zeros(length, 0.0f);
  const auto contribution = world.client_contribution(0, zeros);
  ASSERT_TRUE(contribution.has_value());
  const GroupVec plain_encoding = encode(zeros, world.fp);
  std::size_t equal = 0;
  for (std::size_t i = 0; i < length; ++i) {
    equal += contribution->masked_update[i] == plain_encoding[i];
  }
  EXPECT_LT(equal, 3u);
}

TEST(Protocol, ThresholdEnforcedBeforeRelease) {
  const std::size_t length = 8;
  ProtocolWorld world(length, 3, 8);
  SecureAggregationSession session(*world.tsa, length, 3);

  const std::vector<float> update(length, 0.1f);
  for (std::uint64_t c = 0; c < 2; ++c) {
    const auto contribution = world.client_contribution(c, update);
    ASSERT_TRUE(contribution.has_value());
    session.accept(*contribution);
  }
  // Below threshold: the TSA must refuse and stay live.
  EXPECT_FALSE(session.finalize().has_value());
  EXPECT_FALSE(world.tsa->released());

  const auto third = world.client_contribution(2, update);
  ASSERT_TRUE(third.has_value());
  session.accept(*third);
  EXPECT_TRUE(session.finalize().has_value());
}

TEST(Protocol, OneShotRelease) {
  const std::size_t length = 8;
  ProtocolWorld world(length, 1, 4);
  SecureAggregationSession session(*world.tsa, length, 1);
  const auto c = world.client_contribution(0, std::vector<float>(length, 0.5f));
  ASSERT_TRUE(c.has_value());
  session.accept(*c);
  EXPECT_TRUE(session.finalize().has_value());
  // Second unmask request must be ignored (Fig. 16 step 7), and further
  // contributions are rejected.
  EXPECT_FALSE(world.tsa->request_unmask().has_value());
  const auto late = world.client_contribution(1, std::vector<float>(length, 0.5f));
  ASSERT_TRUE(late.has_value());
  EXPECT_EQ(world.tsa->process_contribution(late->message_index,
                                            late->completing_message,
                                            late->sealed_seed,
                                            late->message_index),
            TsaAccept::kReleased);
}

TEST(Protocol, ReplayedIndexRejected) {
  const std::size_t length = 8;
  ProtocolWorld world(length, 4, 8);
  const auto c = world.client_contribution(0, std::vector<float>(length, 0.5f));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(world.tsa->process_contribution(c->message_index,
                                            c->completing_message,
                                            c->sealed_seed, c->message_index),
            TsaAccept::kAccepted);
  EXPECT_EQ(world.tsa->process_contribution(c->message_index,
                                            c->completing_message,
                                            c->sealed_seed, c->message_index),
            TsaAccept::kIndexConsumed);
}

TEST(Protocol, TamperedSeedCiphertextRejected) {
  const std::size_t length = 8;
  ProtocolWorld world(length, 1, 4);
  auto c = world.client_contribution(0, std::vector<float>(length, 0.5f));
  ASSERT_TRUE(c.has_value());
  c->sealed_seed.ciphertext[15] ^= 0x01;
  EXPECT_EQ(world.tsa->process_contribution(c->message_index,
                                            c->completing_message,
                                            c->sealed_seed, c->message_index),
            TsaAccept::kDecryptionFailed);
  EXPECT_EQ(world.tsa->accepted_count(), 0u);
}

TEST(Protocol, SeedReplayUnderDifferentIndexRejected) {
  // The server cannot take client 0's sealed seed and feed it to a different
  // initial-message index: the shared key differs and decryption fails.
  const std::size_t length = 8;
  ProtocolWorld world(length, 2, 8);
  const auto c = world.client_contribution(0, std::vector<float>(length, 0.5f));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(world.tsa->process_contribution(/*index=*/1, c->completing_message,
                                            c->sealed_seed, /*sequence=*/1),
            TsaAccept::kDecryptionFailed);
}

TEST(Protocol, UnknownIndexRejected) {
  const std::size_t length = 8;
  ProtocolWorld world(length, 1, 4);
  const auto c = world.client_contribution(0, std::vector<float>(length, 0.5f));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(world.tsa->process_contribution(/*index=*/99, c->completing_message,
                                            c->sealed_seed, 99),
            TsaAccept::kIndexUnknown);
}

TEST(Protocol, ClientAbortsOnWrongParamsHash) {
  // Fig. 19 step 3b: the server claims different public parameters than the
  // quote attests -> the client must abort.
  const std::size_t length = 8;
  ProtocolWorld world(length, 1, 4);
  QuoteExpectations bad = world.expectations;
  bad.expected_params_hash[0] ^= 0x01;
  SecAggClient client(world.dh, world.fp, 0);
  const auto contribution = client.prepare_contribution(
      world.platform, bad, world.tsa->initial_messages().at(0),
      world.binary_proof, std::vector<float>(length, 0.5f));
  EXPECT_FALSE(contribution.has_value());
}

TEST(Protocol, ClientAbortsOnUnloggedBinary) {
  // Fig. 20: the attested binary is not in the verifiable log snapshot the
  // client pins -> abort.
  const std::size_t length = 8;
  ProtocolWorld world(length, 1, 4);
  // Build an expectations struct whose snapshot comes from a log that does
  // NOT contain the TSA binary.
  VerifiableLog other_log;
  other_log.append("some-other-binary");
  QuoteExpectations bad = world.expectations;
  bad.log_snapshot = other_log.snapshot();
  SecAggClient client(world.dh, world.fp, 0);
  const auto contribution = client.prepare_contribution(
      world.platform, bad, world.tsa->initial_messages().at(0),
      world.binary_proof, std::vector<float>(length, 0.5f));
  EXPECT_FALSE(contribution.has_value());
}

TEST(Protocol, ClientAbortsOnTamperedInitialMessage) {
  // A MITM server that swaps the DH public value breaks the quote binding.
  const std::size_t length = 8;
  ProtocolWorld world(length, 1, 4);
  TsaInitialMessage tampered = world.tsa->initial_messages().at(0);
  tampered.dh_public[0] ^= 0x01;
  SecAggClient client(world.dh, world.fp, 0);
  const auto contribution = client.prepare_contribution(
      world.platform, world.expectations, tampered, world.binary_proof,
      std::vector<float>(length, 0.5f));
  EXPECT_FALSE(contribution.has_value());
}

TEST(Protocol, DropoutsDoNotBlockOthers) {
  // Client independence: clients 0 and 2 complete, client 1 vanishes after
  // masking (its contribution never reaches the server).  Aggregation over
  // the two arrivals still works — no recovery round needed.
  const std::size_t length = 16;
  ProtocolWorld world(length, 2, 8);
  SecureAggregationSession session(*world.tsa, length, 2);

  std::vector<float> expected(length, 0.0f);
  for (std::uint64_t c : {0ULL, 2ULL}) {
    std::vector<float> update(length, 0.25f * static_cast<float>(c + 1));
    for (std::size_t i = 0; i < length; ++i) expected[i] += update[i];
    const auto contribution = world.client_contribution(c, update);
    ASSERT_TRUE(contribution.has_value());
    EXPECT_EQ(session.accept(*contribution), TsaAccept::kAccepted);
  }
  const auto sum = session.finalize_decoded(world.fp);
  ASSERT_TRUE(sum.has_value());
  for (std::size_t i = 0; i < length; ++i) {
    EXPECT_NEAR((*sum)[i], expected[i], 1e-3);
  }
}

// ------------------------------------- Batched vs sequential equivalence --

// A contribution list with mixed verdicts, in a deliberate order: a valid
// one, a tampered sealed seed (kDecryptionFailed), more valid ones with a
// duplicate index (kIndexConsumed) and an unknown index (kIndexUnknown)
// interleaved.  Prepared against `world`'s initial messages; any
// ProtocolWorld built with the same parameters has an identical TSA
// (deterministic enclave seed), so the same list replays against fresh
// worlds.
std::vector<ClientContribution> mixed_contributions(ProtocolWorld& world,
                                                    std::size_t length) {
  util::Rng rng(11);
  const auto valid = [&](std::uint64_t c) {
    std::vector<float> update(length);
    for (auto& v : update) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    auto contribution = world.client_contribution(c, update);
    EXPECT_TRUE(contribution.has_value());
    return std::move(*contribution);
  };
  std::vector<ClientContribution> batch;
  batch.push_back(valid(0));
  auto tampered = valid(5);
  tampered.sealed_seed.ciphertext[10] ^= 1;
  batch.push_back(std::move(tampered));
  batch.push_back(valid(1));
  batch.push_back(batch[2]);  // duplicate index -> kIndexConsumed
  auto unknown = batch[0];
  unknown.message_index = 999;
  batch.push_back(std::move(unknown));
  batch.push_back(valid(2));
  batch.push_back(valid(3));
  batch.push_back(valid(4));
  return batch;
}

const std::vector<TsaAccept> kMixedVerdicts{
    TsaAccept::kAccepted,      TsaAccept::kDecryptionFailed,
    TsaAccept::kAccepted,      TsaAccept::kIndexConsumed,
    TsaAccept::kIndexUnknown,  TsaAccept::kAccepted,
    TsaAccept::kAccepted,      TsaAccept::kAccepted};

TEST(BatchedSession, BitIdenticalToSequentialUnderMixedVerdicts) {
  const std::size_t length = 700;  // not a ChaCha20 block multiple
  const std::size_t goal = 5;
  ProtocolWorld seq_world(length, goal, 8);
  const auto contributions = mixed_contributions(seq_world, length);

  SecureAggregationSession sequential(*seq_world.tsa, length, goal);
  std::vector<TsaAccept> seq_verdicts;
  for (const auto& c : contributions) {
    seq_verdicts.push_back(sequential.accept(c));
  }
  EXPECT_EQ(seq_verdicts, kMixedVerdicts);
  const auto seq_sum = sequential.finalize();
  ASSERT_TRUE(seq_sum.has_value());

  // Batch sizes 1, K, and K+1 (a final short batch / one oversized span).
  for (const std::size_t batch_size :
       {1UL, contributions.size(), contributions.size() + 1}) {
    ProtocolWorld world(length, goal, 8);
    BatchedSecureAggregationSession batched(*world.tsa, length, goal);
    std::vector<TsaAccept> verdicts;
    for (std::size_t base = 0; base < contributions.size();
         base += batch_size) {
      const std::size_t n = std::min(batch_size, contributions.size() - base);
      const auto part = batched.accept_batch(
          std::span<const ClientContribution>(&contributions[base], n));
      verdicts.insert(verdicts.end(), part.begin(), part.end());
    }
    EXPECT_EQ(verdicts, seq_verdicts) << "batch size " << batch_size;
    EXPECT_EQ(batched.accepted_count(), sequential.accepted_count());
    EXPECT_TRUE(batched.goal_reached());
    // The running masked sum and the released aggregate are bit-identical.
    EXPECT_EQ(batched.masked_sum(), sequential.masked_sum());
    const auto batched_sum = batched.finalize();
    ASSERT_TRUE(batched_sum.has_value());
    EXPECT_EQ(*batched_sum, *seq_sum) << "batch size " << batch_size;
  }
}

TEST(BatchedSession, EmptyBatchIsANoOp) {
  const std::size_t length = 16;
  ProtocolWorld world(length, 1, 4);
  BatchedSecureAggregationSession session(*world.tsa, length, 1);
  const GroupVec before = session.masked_sum();
  EXPECT_TRUE(session.accept_batch({}).empty());
  EXPECT_EQ(session.masked_sum(), before);
  EXPECT_EQ(session.accepted_count(), 0u);
  EXPECT_EQ(world.tsa->boundary().calls(), 0u);

  // The session still works after the no-op.
  const auto c = world.client_contribution(0, std::vector<float>(length, 0.5f));
  ASSERT_TRUE(c.has_value());
  const auto verdicts =
      session.accept_batch(std::span<const ClientContribution>(&*c, 1));
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0], TsaAccept::kAccepted);
  EXPECT_TRUE(session.finalize().has_value());
}

TEST(BatchedSession, RejectedContributionDiscardsOnlyItself) {
  const std::size_t length = 32;
  ProtocolWorld world(length, 2, 8);
  BatchedSecureAggregationSession session(*world.tsa, length, 2);
  auto good0 = world.client_contribution(0, std::vector<float>(length, 0.5f));
  auto bad = world.client_contribution(1, std::vector<float>(length, 0.5f));
  auto good2 = world.client_contribution(2, std::vector<float>(length, -0.5f));
  ASSERT_TRUE(good0 && bad && good2);
  bad->sealed_seed.ciphertext[0] ^= 1;
  const std::vector<ClientContribution> batch{*good0, *bad, *good2};
  const auto verdicts = session.accept_batch(batch);
  EXPECT_EQ(verdicts,
            (std::vector<TsaAccept>{TsaAccept::kAccepted,
                                    TsaAccept::kDecryptionFailed,
                                    TsaAccept::kAccepted}));
  EXPECT_EQ(session.accepted_count(), 2u);
  // The two accepted updates (0.5 and -0.5 everywhere) cancel exactly.
  const auto sum = session.finalize_decoded(world.fp);
  ASSERT_TRUE(sum.has_value());
  for (const float v : *sum) EXPECT_NEAR(v, 0.0f, 1e-3f);
}

TEST(BatchedSession, OneCrossingPerBatch) {
  // The point of batching: K contributions cross the TSA boundary once,
  // with one status byte out per contribution.
  const std::size_t length = 16, k = 4;
  ProtocolWorld world(length, k, 8);
  BatchedSecureAggregationSession session(*world.tsa, length, k);
  std::vector<ClientContribution> batch;
  for (std::uint64_t c = 0; c < k; ++c) {
    auto contribution =
        world.client_contribution(c, std::vector<float>(length, 0.1f));
    ASSERT_TRUE(contribution.has_value());
    batch.push_back(std::move(*contribution));
  }
  session.accept_batch(batch);
  EXPECT_EQ(world.tsa->boundary().calls(), 1u);
  EXPECT_EQ(world.tsa->boundary().bytes_out(), k);
}

// ------------------------------------------------------ Boundary traffic --

TEST(Boundary, AsyncSecAggTrafficIsConstantPerClientInModelSize) {
  // O(K + m): per-contribution boundary traffic must not scale with the
  // model size (Fig. 6's core claim).
  for (const std::size_t length : {64UL, 1024UL}) {
    ProtocolWorld world(length, 1, 2);
    const auto c =
        world.client_contribution(0, std::vector<float>(length, 0.1f));
    ASSERT_TRUE(c.has_value());
    const std::uint64_t before = world.tsa->boundary().bytes_in();
    world.tsa->process_contribution(c->message_index, c->completing_message,
                                    c->sealed_seed, c->message_index);
    const std::uint64_t per_client = world.tsa->boundary().bytes_in() - before;
    EXPECT_LT(per_client, 256u) << "model length " << length;
  }
}

TEST(Boundary, NaiveTeeTrafficScalesWithModelSize) {
  const std::size_t length = 1024;
  NaiveTeeAggregator naive(length, 1);
  const GroupVec update(length, 7u);
  naive.submit_update(update);
  EXPECT_GE(naive.boundary().bytes_in(), length * sizeof(std::uint32_t));
  const auto released = naive.release();
  ASSERT_TRUE(released.has_value());
  EXPECT_EQ((*released)[0], 7u);
}

TEST(Boundary, NaiveBelowThresholdRefuses) {
  NaiveTeeAggregator naive(8, 2);
  naive.submit_update(GroupVec(8, 1u));
  EXPECT_FALSE(naive.release().has_value());
}

TEST(Boundary, NaiveRefusalMetersZeroBytes) {
  // Fig. 6 counts what actually crosses: a below-threshold refusal is a
  // status-only call, not a 1-byte transfer.
  NaiveTeeAggregator naive(8, 2);
  naive.submit_update(GroupVec(8, 1u));
  const std::uint64_t before = naive.boundary().bytes_out();
  EXPECT_FALSE(naive.release().has_value());
  EXPECT_EQ(naive.boundary().bytes_out(), before);
  EXPECT_EQ(naive.boundary().calls(), 2u);  // the call itself is still metered
}

TEST(Boundary, NaiveReleaseMeterIsIdempotent) {
  // The aggregate's bytes cross the boundary once; re-serving the released
  // sum must not re-charge them.
  const std::size_t length = 64;
  NaiveTeeAggregator naive(length, 1);
  naive.submit_update(GroupVec(length, 3u));
  const std::uint64_t before = naive.boundary().bytes_out();
  ASSERT_TRUE(naive.release().has_value());
  const std::uint64_t after_first = naive.boundary().bytes_out();
  EXPECT_EQ(after_first - before, length * sizeof(std::uint32_t));
  const auto again = naive.release();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ((*again)[0], 3u);
  EXPECT_EQ(naive.boundary().bytes_out(), after_first);
}

TEST(Boundary, CostModelCalibration) {
  // 100 clients x 20 MB across the boundary should cost ~650 ms (Fig. 6).
  BoundaryMeter meter;
  for (int i = 0; i < 100; ++i) meter.record_call(20 * 1000 * 1000, 1);
  const BoundaryCostModel model;
  const double ms = model.transfer_time_ms(meter);
  EXPECT_NEAR(ms, 650.0, 60.0);
}

}  // namespace
}  // namespace papaya::secagg
