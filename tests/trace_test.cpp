// Tests for CSV trace export: quoting/parsing round-trips, table builders,
// and the end-to-end export of a real simulation run.  Also hosts the
// simulator-grid invariant sweep: for every (mode, secagg, failure) cell,
// one short run must satisfy the cross-cutting accounting invariants.

#include <gtest/gtest.h>

#include <cstdlib>
#include <tuple>

#include "sim/fl_simulator.hpp"
#include "sim/trace_export.hpp"

namespace papaya::sim {
namespace {

// ------------------------------------------------------------------- CSV ----

TEST(Csv, SimpleTableRoundTrips) {
  CsvTable table;
  table.header = {"a", "b"};
  table.rows = {{"1", "2"}, {"3", "4"}};
  const CsvTable back = parse_csv(to_csv(table));
  EXPECT_EQ(back.header, table.header);
  EXPECT_EQ(back.rows, table.rows);
}

TEST(Csv, QuotingRoundTripsHostileFields) {
  CsvTable table;
  table.header = {"name", "note"};
  table.rows = {{"comma,field", "quote\"field"},
                {"newline\nfield", "crlf\r\nfield"},
                {"", "plain"}};
  const CsvTable back = parse_csv(to_csv(table));
  ASSERT_EQ(back.rows.size(), 3u);
  EXPECT_EQ(back.rows[0][0], "comma,field");
  EXPECT_EQ(back.rows[0][1], "quote\"field");
  EXPECT_EQ(back.rows[1][0], "newline\nfield");
  // \r inside a quoted field is preserved verbatim by the writer; the
  // reader tolerates CRLF line endings outside quotes.
  EXPECT_EQ(back.rows[2][1], "plain");
}

TEST(Csv, RaggedRowRejectedOnWrite) {
  CsvTable table;
  table.header = {"a", "b"};
  table.rows = {{"only-one"}};
  EXPECT_THROW(to_csv(table), std::invalid_argument);
}

TEST(Csv, RaggedRowRejectedOnParse) {
  EXPECT_THROW(parse_csv("a,b\n1\n"), std::invalid_argument);
}

TEST(Csv, UnterminatedQuoteRejected) {
  EXPECT_THROW(parse_csv("a\n\"oops\n"), std::invalid_argument);
}

TEST(Csv, EmptyInputRejected) {
  EXPECT_THROW(parse_csv(""), std::invalid_argument);
}

TEST(Csv, TimeSeriesTable) {
  TimeSeries series;
  series.add(0.5, 3.25);
  series.add(1.5, 3.00);
  const CsvTable table = time_series_table(series, "eval_loss");
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.header[1], "eval_loss");
  EXPECT_EQ(std::atof(table.rows[1][1].c_str()), 3.0);
}

TEST(Csv, ParticipationTableColumns) {
  ParticipationRecord rec;
  rec.client_id = 9;
  rec.exec_time_s = 12.5;
  rec.num_examples = 40;
  rec.update_applied = true;
  rec.staleness = 3;
  const CsvTable table = participation_table({rec});
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.rows[0][0], "9");
  EXPECT_EQ(table.rows[0][2], "12.5");
  EXPECT_EQ(table.rows[0][4], "1");
  EXPECT_EQ(table.rows[0][6], "3");
}

TEST(Csv, ExportTracesFromRealRun) {
  SimulationConfig cfg;
  cfg.task.name = "lm";
  cfg.task.mode = fl::TrainingMode::kAsync;
  cfg.task.concurrency = 8;
  cfg.task.aggregation_goal = 2;
  cfg.population.num_devices = 80;
  cfg.corpus.vocab_size = 32;
  cfg.model.vocab_size = 32;
  cfg.model.embed_dim = 6;
  cfg.model.hidden_dim = 8;
  cfg.trainer.compute_losses = false;
  cfg.max_server_steps = 10;
  cfg.eval_every_steps = 5;
  cfg.record_utilization = true;
  cfg.seed = 3;
  FlSimulator simulator(cfg);
  const SimulationResult result = simulator.run();

  const SimulationTraces traces = export_traces(result);
  EXPECT_GT(traces.loss_curve.num_rows(), 0u);
  EXPECT_GT(traces.participations.num_rows(), 0u);
  EXPECT_GE(traces.summary.num_rows(), 9u);
  // The whole bundle survives serialization.
  for (const CsvTable* t : {&traces.loss_curve, &traces.active_clients,
                            &traces.participations, &traces.summary}) {
    if (t->num_rows() == 0 && t->header.empty()) continue;
    const CsvTable back = parse_csv(to_csv(*t));
    EXPECT_EQ(back.rows, t->rows);
  }
  // Summary values agree with the result object.
  for (const auto& row : traces.summary.rows) {
    if (row[0] == "server_steps") {
      EXPECT_EQ(row[1], std::to_string(result.server_steps));
    }
  }
}

// ------------------------------------------------ Simulator invariant grid --

struct GridParam {
  fl::TrainingMode mode;
  bool secagg;
  bool inject_failure;
};

class SimulatorGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(SimulatorGrid, AccountingInvariantsHold) {
  const GridParam p = GetParam();
  SimulationConfig cfg;
  cfg.task.name = "lm";
  cfg.task.mode = p.mode;
  cfg.task.aggregation_goal = 3;
  cfg.task.concurrency =
      p.mode == fl::TrainingMode::kSync
          ? fl::TaskConfig::over_selected_cohort(3, 0.3)
          : 9;
  cfg.task.secagg_enabled = p.secagg;
  cfg.population.num_devices = 90;
  cfg.corpus.vocab_size = 32;
  cfg.model.vocab_size = 32;
  cfg.model.embed_dim = 6;
  cfg.model.hidden_dim = 8;
  cfg.trainer.compute_losses = false;
  cfg.max_server_steps = 8;
  cfg.max_sim_time_s = 1.0e5;
  cfg.eval_every_steps = 4;
  cfg.num_aggregators = p.inject_failure ? 2 : 1;
  if (p.inject_failure) {
    cfg.aggregator_failure_at_s = 100.0;
    cfg.aggregator_failure_timeout_s = 20.0;
  }
  cfg.seed = 17;

  FlSimulator simulator(cfg);
  const SimulationResult result = simulator.run();

  // Conservation: received >= applied + discarded; steps quantized by K
  // (an in-flight partial buffer may remain at shutdown).
  const fl::TaskStats& stats = result.task_stats;
  EXPECT_GE(stats.updates_received,
            stats.updates_applied + stats.updates_discarded);
  EXPECT_EQ(result.server_steps,
            stats.updates_applied / cfg.task.aggregation_goal);
  EXPECT_GT(result.server_steps, 0u);
  // Comm trips are the received updates (Fig. 3's metric).
  EXPECT_EQ(result.comm_trips, stats.updates_received);
  // Participations cover at least the received updates.
  EXPECT_GE(result.participations_started, stats.updates_received);
  // Time moved and the final model is finite.
  EXPECT_GT(result.end_time_s, 0.0);
  for (float v : result.final_model) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(
    Cells, SimulatorGrid,
    ::testing::Values(GridParam{fl::TrainingMode::kAsync, false, false},
                      GridParam{fl::TrainingMode::kAsync, true, false},
                      GridParam{fl::TrainingMode::kAsync, false, true},
                      GridParam{fl::TrainingMode::kSync, false, false},
                      GridParam{fl::TrainingMode::kSync, true, false},
                      GridParam{fl::TrainingMode::kSync, false, true}),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      std::string name =
          info.param.mode == fl::TrainingMode::kAsync ? "async" : "sync";
      if (info.param.secagg) name += "_secagg";
      if (info.param.inject_failure) name += "_failover";
      return name;
    });

}  // namespace
}  // namespace papaya::sim
