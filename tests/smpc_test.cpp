// Tests for the SMPC-based Secure Aggregation baseline (Bonawitz et al.
// 2016): Shamir secret sharing over Z_{2^130-5}, the four-round protocol,
// dropout recovery, threshold enforcement, tampering detection, and the
// privacy rule that no peer's self-mask and mask-seed shares are both
// revealed.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <tuple>

#include "crypto/dh.hpp"
#include "fl/smpc_round.hpp"
#include "ml/optimizer.hpp"
#include "secagg/fixed_point.hpp"
#include "smpc/protocol.hpp"
#include "smpc/shamir.hpp"
#include "util/rng.hpp"

namespace papaya::smpc {
namespace {

using crypto::BigUInt;

/// Deterministic byte source for Shamir coefficients.
RandomBytesFn test_random(std::uint64_t seed) {
  auto rng = std::make_shared<util::Rng>(seed);
  return [rng](std::size_t n) {
    util::Bytes b(n);
    for (auto& x : b) x = static_cast<std::uint8_t>(rng->next());
    return b;
  };
}

util::Bytes secret_bytes(std::initializer_list<std::uint8_t> v) {
  return util::Bytes(v);
}

// ----------------------------------------------------------------- Shamir --

TEST(Shamir, FieldPrimeIsPoly1305Prime) {
  // 2^130 - 5.
  const BigUInt two130 = BigUInt(1) << 130;
  EXPECT_EQ(shamir_field_prime() + BigUInt(5), two130);
}

TEST(Shamir, SplitThenReconstructRoundTrips) {
  const util::Bytes secret =
      secret_bytes({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  const auto shares = shamir_split(secret, 5, 3, test_random(1));
  ASSERT_EQ(shares.size(), 5u);
  EXPECT_EQ(shamir_reconstruct(shares, 3), secret);
}

TEST(Shamir, AnyThresholdSubsetReconstructs) {
  const util::Bytes secret =
      secret_bytes({0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8});
  const auto shares = shamir_split(secret, 6, 3, test_random(2));
  for (std::size_t a = 0; a < 6; ++a) {
    for (std::size_t b = a + 1; b < 6; ++b) {
      for (std::size_t c = b + 1; c < 6; ++c) {
        const std::vector<Share> subset{shares[a], shares[b], shares[c]};
        EXPECT_EQ(shamir_reconstruct(subset, 3), secret);
      }
    }
  }
}

TEST(Shamir, ThresholdOneIsReplication) {
  const util::Bytes secret = secret_bytes({42});
  const auto shares = shamir_split(secret, 4, 1, test_random(3));
  for (const Share& s : shares) {
    EXPECT_EQ(shamir_reconstruct(std::vector<Share>{s}, 1, 1), secret);
  }
}

TEST(Shamir, FullThresholdNeedsAllShares) {
  const util::Bytes secret = secret_bytes({7, 7, 7, 7});
  const auto shares = shamir_split(secret, 4, 4, test_random(4));
  EXPECT_EQ(shamir_reconstruct(shares, 4, 4), secret);
  const std::vector<Share> missing(shares.begin(), shares.begin() + 3);
  EXPECT_THROW(shamir_reconstruct(missing, 4, 4), std::invalid_argument);
}

TEST(Shamir, TooFewSharesThrow) {
  const auto shares = shamir_split(secret_bytes({1}), 5, 3, test_random(5));
  const std::vector<Share> two(shares.begin(), shares.begin() + 2);
  EXPECT_THROW(shamir_reconstruct(two, 3), std::invalid_argument);
}

TEST(Shamir, BelowThresholdSharesAreUniformlyUnrelatedToSecret) {
  // With t-1 shares, every candidate secret is equally consistent: check
  // that the same two shares reconstruct *different* secrets depending on
  // which third share completes them, i.e. two shares pin nothing down.
  const util::Bytes s1 = secret_bytes({1, 0, 0, 0, 0, 0, 0, 0});
  const util::Bytes s2 = secret_bytes({2, 0, 0, 0, 0, 0, 0, 0});
  const auto shares1 = shamir_split(s1, 5, 3, test_random(6));
  const auto shares2 = shamir_split(s2, 5, 3, test_random(7));
  // Mixing two shares from split 1 with one share from split 2 still
  // interpolates, but to a garbage point: either a ~130-bit value that no
  // longer fits the declared secret width (reconstruct throws) or, at
  // width 17 (the full field), a value different from the real secret.
  const std::vector<Share> mixed{shares1[0], shares1[1], shares2[2]};
  util::Bytes padded_s1(17, 0);
  std::copy(s1.begin(), s1.end(), padded_s1.end() - 8);
  EXPECT_NE(shamir_reconstruct(mixed, 3, 17), padded_s1);
}

TEST(Shamir, DuplicateXRejected) {
  const auto shares = shamir_split(secret_bytes({9}), 4, 2, test_random(8));
  const std::vector<Share> dup{shares[0], shares[0]};
  EXPECT_THROW(shamir_reconstruct(dup, 2), std::invalid_argument);
}

TEST(Shamir, ZeroXRejected) {
  std::vector<Share> bad{Share{0, BigUInt(5)}, Share{1, BigUInt(6)}};
  EXPECT_THROW(shamir_reconstruct(bad, 2), std::invalid_argument);
}

TEST(Shamir, ShareOutsideFieldRejected) {
  std::vector<Share> bad{Share{1, shamir_field_prime()},
                         Share{2, BigUInt(6)}};
  EXPECT_THROW(shamir_reconstruct(bad, 2), std::invalid_argument);
}

TEST(Shamir, InvalidThresholdRejected) {
  EXPECT_THROW(shamir_split(secret_bytes({1}), 3, 0, test_random(9)),
               std::invalid_argument);
  EXPECT_THROW(shamir_split(secret_bytes({1}), 3, 4, test_random(9)),
               std::invalid_argument);
}

TEST(Shamir, SecretWiderThanFieldRejected) {
  // 17 bytes = 136 bits > 130-bit field.
  const util::Bytes wide(17, 0xff);
  EXPECT_THROW(shamir_split(wide, 3, 2, test_random(10)),
               std::invalid_argument);
}

TEST(Shamir, ArbitraryXCoordinates) {
  const util::Bytes secret = secret_bytes({11, 22, 33});
  const std::vector<std::uint32_t> xs{7, 1000, 0xfffffffe};
  const auto shares = shamir_split_at(secret, xs, 2, test_random(11));
  const std::vector<Share> subset{shares[0], shares[2]};
  EXPECT_EQ(shamir_reconstruct(subset, 2, 3), secret);
}

TEST(Shamir, SplitAtRejectsDuplicateOrZeroX) {
  const std::vector<std::uint32_t> dup{1, 2, 1};
  const std::vector<std::uint32_t> zero{0, 1, 2};
  EXPECT_THROW(shamir_split_at(secret_bytes({1}), dup, 2, test_random(12)),
               std::invalid_argument);
  EXPECT_THROW(shamir_split_at(secret_bytes({1}), zero, 2, test_random(12)),
               std::invalid_argument);
}

TEST(Shamir, SharesAreAdditivelyHomomorphic) {
  // Shamir over a field is linear: reconstructing the element-wise sum of
  // two share sets yields the sum of the secrets (mod p).  This is the
  // property threshold protocols build on.
  const util::Bytes a = secret_bytes({0, 0, 0, 100});
  const util::Bytes b = secret_bytes({0, 0, 0, 55});
  const auto sa = shamir_split(a, 5, 3, test_random(21));
  const auto sb = shamir_split(b, 5, 3, test_random(22));
  const BigUInt& p = shamir_field_prime();
  std::vector<Share> sum;
  for (std::size_t i = 0; i < 5; ++i) {
    sum.push_back(Share{sa[i].x, (sa[i].y + sb[i].y) % p});
  }
  EXPECT_EQ(shamir_reconstruct(sum, 3, 4), secret_bytes({0, 0, 0, 155}));
}

/// Property sweep: split/reconstruct round-trips across (n, t) and works
/// from the *last* t shares as well as the first.
class ShamirSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ShamirSweep, RoundTripsFromAnyEnd) {
  const auto [n, t] = GetParam();
  util::Rng rng(n * 131 + t);
  util::Bytes secret(16);
  for (auto& b : secret) b = static_cast<std::uint8_t>(rng.next());
  const auto shares = shamir_split(secret, n, t, test_random(n * 17 + t));
  const std::vector<Share> head(shares.begin(), shares.begin() + t);
  const std::vector<Share> tail(shares.end() - t, shares.end());
  EXPECT_EQ(shamir_reconstruct(head, t), secret);
  EXPECT_EQ(shamir_reconstruct(tail, t), secret);
}

INSTANTIATE_TEST_SUITE_P(
    NT, ShamirSweep,
    ::testing::Values(std::make_tuple(2, 2), std::make_tuple(3, 2),
                      std::make_tuple(5, 3), std::make_tuple(8, 5),
                      std::make_tuple(12, 7), std::make_tuple(20, 11),
                      std::make_tuple(20, 20)));

// --------------------------------------------------------------- Protocol --

SmpcConfig small_config(std::size_t len = 8, std::size_t threshold = 2) {
  SmpcConfig c;
  c.vector_length = len;
  c.threshold = threshold;
  return c;
}

std::vector<secagg::GroupVec> make_inputs(std::size_t n, std::size_t len,
                                          std::uint64_t seed = 99) {
  util::Rng rng(seed);
  std::vector<secagg::GroupVec> inputs(n);
  for (auto& v : inputs) {
    v.resize(len);
    for (auto& x : v) x = static_cast<std::uint32_t>(rng.next());
  }
  return inputs;
}

secagg::GroupVec plaintext_sum(const std::vector<secagg::GroupVec>& inputs,
                               const std::set<std::uint32_t>& included) {
  secagg::GroupVec sum(inputs.front().size(), 0);
  for (std::uint32_t id : included) {
    secagg::add_in_place(sum, inputs[id - 1]);
  }
  return sum;
}

std::set<std::uint32_t> all_ids(std::size_t n) {
  std::set<std::uint32_t> s;
  for (std::uint32_t i = 1; i <= n; ++i) s.insert(i);
  return s;
}

TEST(SmpcProtocol, NoDropoutsSumMatchesPlaintext) {
  const auto inputs = make_inputs(5, 8);
  const auto result = run_smpc_round(small_config(8, 3), inputs);
  EXPECT_EQ(result.included, all_ids(5));
  EXPECT_EQ(result.aggregate, plaintext_sum(inputs, result.included));
}

TEST(SmpcProtocol, TwoClientsMinimum) {
  const auto inputs = make_inputs(2, 4);
  const auto result = run_smpc_round(small_config(4, 2), inputs);
  EXPECT_EQ(result.aggregate, plaintext_sum(inputs, all_ids(2)));
}

TEST(SmpcProtocol, DropoutBeforeShareKeysExcludedCleanly) {
  const auto inputs = make_inputs(5, 8);
  DropoutSchedule d;
  d.before_share_keys = {3};
  const auto result = run_smpc_round(small_config(8, 3), inputs, d);
  EXPECT_EQ(result.included, (std::set<std::uint32_t>{1, 2, 4, 5}));
  EXPECT_EQ(result.aggregate, plaintext_sum(inputs, result.included));
}

TEST(SmpcProtocol, DropoutAfterShareKeysRecoveredViaSeedReconstruction) {
  // The hard case: client 2 contributed pairwise masks into nobody's input
  // but everyone else masked *with* client 2 (it completed ShareKeys), so
  // the server must reconstruct 2's key seed and strip those masks.
  const auto inputs = make_inputs(5, 8);
  DropoutSchedule d;
  d.before_masked_input = {2};
  const auto result = run_smpc_round(small_config(8, 3), inputs, d);
  EXPECT_EQ(result.included, (std::set<std::uint32_t>{1, 3, 4, 5}));
  EXPECT_EQ(result.aggregate, plaintext_sum(inputs, result.included));
}

TEST(SmpcProtocol, MultipleDropoutsAtBothStages) {
  const auto inputs = make_inputs(8, 16);
  DropoutSchedule d;
  d.before_share_keys = {1};
  d.before_masked_input = {4, 7};
  const auto result = run_smpc_round(small_config(16, 3), inputs, d);
  EXPECT_EQ(result.included, (std::set<std::uint32_t>{2, 3, 5, 6, 8}));
  EXPECT_EQ(result.aggregate, plaintext_sum(inputs, result.included));
}

TEST(SmpcProtocol, DropoutDuringUnmaskingToleratedAboveThreshold) {
  const auto inputs = make_inputs(5, 8);
  DropoutSchedule d;
  d.before_unmasking = {5, 4};  // 3 responders remain, threshold 3
  const auto result = run_smpc_round(small_config(8, 3), inputs, d);
  // All five masked inputs are included; only the unmask responses thinned.
  EXPECT_EQ(result.included, all_ids(5));
  EXPECT_EQ(result.aggregate, plaintext_sum(inputs, result.included));
}

TEST(SmpcProtocol, BelowThresholdSurvivorsRefuseRelease) {
  const auto inputs = make_inputs(4, 4);
  DropoutSchedule d;
  d.before_masked_input = {2, 3, 4};  // one survivor, threshold 3
  EXPECT_THROW(run_smpc_round(small_config(4, 3), inputs, d),
               std::runtime_error);
}

TEST(SmpcProtocol, BelowThresholdUnmaskResponsesRefuseRelease) {
  const auto inputs = make_inputs(4, 4);
  DropoutSchedule d;
  d.before_unmasking = {2, 3, 4};  // one responder, threshold 3
  EXPECT_THROW(run_smpc_round(small_config(4, 3), inputs, d),
               std::runtime_error);
}

TEST(SmpcProtocol, MaskedInputLooksUniformNotLikeInput) {
  // The server's view of a single client's upload must be masked: compare
  // the masked vector against the plaintext input.
  const SmpcConfig config = small_config(64, 2);
  const auto inputs = make_inputs(2, 64);

  SmpcServer server(config);
  util::Bytes seed1{1, 0, 0, 0, 0, 0, 0, 0};
  util::Bytes seed2{2, 0, 0, 0, 0, 0, 0, 0};
  SmpcClient c1(config, 1, seed1);
  SmpcClient c2(config, 2, seed2);
  server.register_advertisement(c1.advertise_keys());
  server.register_advertisement(c2.advertise_keys());
  const auto cohort = server.cohort_broadcast();
  server.submit_shares(c1.share_keys(cohort));
  server.submit_shares(c2.share_keys(cohort));
  c1.receive_shares(server.inbox_for(1));
  const secagg::GroupVec masked = c1.masked_input(inputs[0]);
  std::size_t identical = 0;
  for (std::size_t i = 0; i < masked.size(); ++i) {
    identical += masked[i] == inputs[0][i];
  }
  // 64 words each hiding behind a ChaCha20 pad: expect essentially none
  // unchanged (probability of one collision is 2^-32 per word).
  EXPECT_LE(identical, 1u);
}

TEST(SmpcProtocol, ClientAbortsOnTamperedShare) {
  const SmpcConfig config = small_config(4, 2);
  util::Bytes seed1{1, 1, 1, 1};
  util::Bytes seed2{2, 2, 2, 2};
  SmpcClient c1(config, 1, seed1);
  SmpcClient c2(config, 2, seed2);
  SmpcServer server(config);
  server.register_advertisement(c1.advertise_keys());
  server.register_advertisement(c2.advertise_keys());
  const auto cohort = server.cohort_broadcast();
  server.submit_shares(c1.share_keys(cohort));
  server.submit_shares(c2.share_keys(cohort));
  auto inbox = server.inbox_for(2);
  ASSERT_FALSE(inbox.empty());
  inbox[0].box.ciphertext[16] ^= 0x01;  // flip a bit inside the body
  EXPECT_THROW(c2.receive_shares(inbox), std::runtime_error);
}

TEST(SmpcProtocol, ClientRejectsMisroutedShare) {
  const SmpcConfig config = small_config(4, 2);
  util::Bytes seed1{1, 1, 1, 1};
  util::Bytes seed2{2, 2, 2, 2};
  util::Bytes seed3{3, 3, 3, 3};
  SmpcClient c1(config, 1, seed1);
  SmpcClient c2(config, 2, seed2);
  SmpcClient c3(config, 3, seed3);
  SmpcServer server(config);
  for (auto* c : {&c1, &c2, &c3}) {
    server.register_advertisement(c->advertise_keys());
  }
  const auto cohort = server.cohort_broadcast();
  server.submit_shares(c1.share_keys(cohort));
  server.submit_shares(c2.share_keys(cohort));
  server.submit_shares(c3.share_keys(cohort));
  // Deliver client 3's inbox to client 2: `to` mismatch must be caught.
  auto inbox3 = server.inbox_for(3);
  EXPECT_THROW(c2.receive_shares(inbox3), std::runtime_error);
}

TEST(SmpcProtocol, UnmaskRefusesOverlappingSurvivorAndDropoutSets) {
  const SmpcConfig config = small_config(4, 2);
  util::Bytes seed{9, 9};
  SmpcClient c(config, 1, seed);
  EXPECT_THROW(c.unmask({1, 2}, {2}), std::invalid_argument);
}

TEST(SmpcProtocol, ServerRejectsSeedShareForSurvivor) {
  // A malicious server asking for a survivor's mask-seed share (to strip
  // that survivor's pairwise masks and expose its input) must be refused;
  // here we check the server-side guard that models the honest server
  // refusing to accept such a response.
  const SmpcConfig config = small_config(4, 2);
  const auto inputs = make_inputs(3, 4);
  SmpcServer server(config);
  std::vector<SmpcClient> clients;
  for (std::uint32_t id = 1; id <= 3; ++id) {
    util::Bytes seed{static_cast<std::uint8_t>(id), 0, 0, 0, 0, 0, 0, 0};
    clients.emplace_back(config, id, seed);
  }
  for (auto& c : clients) server.register_advertisement(c.advertise_keys());
  const auto cohort = server.cohort_broadcast();
  for (auto& c : clients) server.submit_shares(c.share_keys(cohort));
  for (auto& c : clients) c.receive_shares(server.inbox_for(c.id()));
  for (std::size_t i = 0; i < 3; ++i) {
    server.submit_masked_input(clients[i].id(),
                               clients[i].masked_input(inputs[i]));
  }
  // Forge a response that reveals a seed share for survivor 2.
  UnmaskResponse forged = clients[0].unmask({1, 2, 3}, {});
  forged.mask_seed_shares.push_back(
      RevealedShare{2, Share{1, crypto::BigUInt(1)}});
  EXPECT_THROW(server.submit_unmask_response(forged), std::invalid_argument);
}

TEST(SmpcProtocol, ServerRejectsResponderThatIsNotSurvivor) {
  const SmpcConfig config = small_config(4, 2);
  SmpcServer server(config);
  UnmaskResponse r;
  r.from = 42;
  EXPECT_THROW(server.submit_unmask_response(r), std::invalid_argument);
}

TEST(SmpcProtocol, ServerRejectsMaskedInputWithoutShareKeys) {
  const SmpcConfig config = small_config(4, 2);
  SmpcServer server(config);
  util::Bytes seed{5};
  SmpcClient c(config, 5, seed);
  server.register_advertisement(c.advertise_keys());
  EXPECT_THROW(server.submit_masked_input(5, secagg::GroupVec(4, 0)),
               std::invalid_argument);
}

TEST(SmpcProtocol, ServerRejectsWrongVectorLength) {
  const SmpcConfig config = small_config(4, 2);
  const auto inputs = make_inputs(2, 4);
  SmpcServer server(config);
  util::Bytes seed1{1};
  util::Bytes seed2{2};
  SmpcClient c1(config, 1, seed1), c2(config, 2, seed2);
  server.register_advertisement(c1.advertise_keys());
  server.register_advertisement(c2.advertise_keys());
  const auto cohort = server.cohort_broadcast();
  server.submit_shares(c1.share_keys(cohort));
  EXPECT_THROW(server.submit_masked_input(1, secagg::GroupVec(3, 0)),
               std::invalid_argument);
}

TEST(SmpcProtocol, ServerRejectsDuplicateAdvertisement) {
  SmpcServer server(small_config());
  util::Bytes seed{1};
  SmpcClient c(small_config(), 1, seed);
  server.register_advertisement(c.advertise_keys());
  EXPECT_THROW(server.register_advertisement(c.advertise_keys()),
               std::invalid_argument);
}

TEST(SmpcProtocol, DeterministicGivenSeed) {
  const auto inputs = make_inputs(4, 8);
  const auto r1 = run_smpc_round(small_config(8, 2), inputs, {}, 7);
  const auto r2 = run_smpc_round(small_config(8, 2), inputs, {}, 7);
  EXPECT_EQ(r1.aggregate, r2.aggregate);
  EXPECT_EQ(r1.traffic.client_to_server_bytes,
            r2.traffic.client_to_server_bytes);
}

TEST(SmpcProtocol, ShareTrafficGrowsQuadratically) {
  // The O(n^2) share ciphertexts are the scalability wall Sec. 5 points at.
  const auto t8 = run_smpc_round(small_config(4, 2), make_inputs(8, 4)).traffic;
  const auto t16 =
      run_smpc_round(small_config(4, 2), make_inputs(16, 4)).traffic;
  const auto t32 =
      run_smpc_round(small_config(4, 2), make_inputs(32, 4)).traffic;
  // Subtract the masked-input contribution (linear in n) by comparing
  // growth: doubling n should much more than double total bytes.
  const double g1 = static_cast<double>(t16.client_to_server_bytes) /
                    static_cast<double>(t8.client_to_server_bytes);
  const double g2 = static_cast<double>(t32.client_to_server_bytes) /
                    static_cast<double>(t16.client_to_server_bytes);
  EXPECT_GT(g1, 2.5);
  EXPECT_GT(g2, 3.0);  // approaches 4x as the quadratic term dominates
}

/// Property sweep over (n, threshold, dropout pattern): the aggregate always
/// equals the plaintext sum of exactly the survivors.
class SmpcSweep : public ::testing::TestWithParam<
                      std::tuple<std::size_t, std::size_t, int>> {};

TEST_P(SmpcSweep, AggregateMatchesSurvivorPlaintextSum) {
  const auto [n, threshold, pattern] = GetParam();
  const std::size_t len = 12;
  const auto inputs = make_inputs(n, len, 1234 + n);
  DropoutSchedule d;
  switch (pattern) {
    case 0:
      break;  // no dropouts
    case 1:
      d.before_share_keys = {static_cast<std::uint32_t>(n)};
      break;
    case 2:
      d.before_masked_input = {1};
      break;
    case 3:
      d.before_share_keys = {2};
      d.before_masked_input = {static_cast<std::uint32_t>(n - 1)};
      break;
    default:
      d.before_unmasking = {1};
      break;
  }
  const std::size_t expected_survivors =
      n - d.before_share_keys.size() - d.before_masked_input.size();
  if (expected_survivors < threshold) {
    // The protocol must refuse to release an aggregate of fewer than t
    // inputs (Fig. 15 step 4).
    EXPECT_THROW(run_smpc_round(SmpcConfig{len, threshold, nullptr}, inputs,
                                d, 5 * n + pattern),
                 std::runtime_error);
    return;
  }
  const auto result = run_smpc_round(
      SmpcConfig{len, threshold, nullptr}, inputs, d, 5 * n + pattern);
  EXPECT_EQ(result.aggregate, plaintext_sum(inputs, result.included));
  EXPECT_GE(result.included.size(), threshold);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SmpcSweep,
    ::testing::Combine(::testing::Values<std::size_t>(4, 6, 10),
                       ::testing::Values<std::size_t>(2, 3),
                       ::testing::Values(0, 1, 2, 3, 4)));

// ----------------------------------------------- FL-shaped integration ------

TEST(SmpcIntegration, FixedPointModelUpdatesAggregateLikePlaintext) {
  // The FL use of the protocol: clients hold float model deltas, fixed-point
  // encode them, aggregate securely, and the server decodes the sum and
  // averages — the result must match the plaintext mean to within encoding
  // resolution.
  constexpr std::size_t kClients = 6;
  constexpr std::size_t kLen = 24;
  const auto fp = secagg::FixedPointParams::for_budget(1.0, kClients);

  util::Rng rng(404);
  std::vector<std::vector<float>> deltas(kClients);
  std::vector<secagg::GroupVec> inputs(kClients);
  std::vector<double> mean(kLen, 0.0);
  for (std::size_t c = 0; c < kClients; ++c) {
    deltas[c].resize(kLen);
    for (std::size_t i = 0; i < kLen; ++i) {
      deltas[c][i] = static_cast<float>(rng.uniform(-1.0, 1.0));
      mean[i] += deltas[c][i] / kClients;
    }
    inputs[c] = secagg::encode(deltas[c], fp);
  }

  SmpcConfig config;
  config.vector_length = kLen;
  config.threshold = 4;
  const auto result = run_smpc_round(config, inputs, {}, 11);
  ASSERT_EQ(result.included.size(), kClients);

  const std::vector<float> decoded_sum = secagg::decode(result.aggregate, fp);
  for (std::size_t i = 0; i < kLen; ++i) {
    EXPECT_NEAR(decoded_sum[i] / kClients, mean[i],
                static_cast<double>(kClients) / fp.scale);
  }
}

TEST(SmpcIntegration, DropoutsAverageOverSurvivorsOnly) {
  constexpr std::size_t kClients = 5;
  constexpr std::size_t kLen = 8;
  const auto fp = secagg::FixedPointParams::for_budget(1.0, kClients);

  std::vector<secagg::GroupVec> inputs(kClients);
  std::vector<std::vector<float>> deltas(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    deltas[c].assign(kLen, 0.1f * static_cast<float>(c + 1));
    inputs[c] = secagg::encode(deltas[c], fp);
  }

  SmpcConfig config;
  config.vector_length = kLen;
  config.threshold = 3;
  DropoutSchedule d;
  d.before_masked_input = {2};  // client 2's 0.2 delta never arrives
  const auto result = run_smpc_round(config, inputs, d, 12);
  ASSERT_EQ(result.included, (std::set<std::uint32_t>{1, 3, 4, 5}));

  const std::vector<float> sum = secagg::decode(result.aggregate, fp);
  const double expected = 0.1 + 0.3 + 0.4 + 0.5;  // survivors only
  // Tolerance: 4 roundings at 1/scale plus float32 representation error.
  for (float v : sum) EXPECT_NEAR(v, expected, 4.0 / fp.scale + 1e-6);
}

// ------------------------------------------- SmpcSyncRound (GFL baseline) ---

fl::SmpcSyncRound::Config round_config(std::size_t model_size,
                                       std::size_t cohort,
                                       std::size_t threshold) {
  fl::SmpcSyncRound::Config c;
  c.model_size = model_size;
  c.cohort_size = cohort;
  c.threshold = threshold;
  c.fixed_point = secagg::FixedPointParams::for_budget(32.0, cohort);
  c.seed = 77;
  return c;
}

TEST(SmpcSyncRound, WeightedMeanMatchesPlaintext) {
  constexpr std::size_t kLen = 12;
  fl::SmpcSyncRound round(round_config(kLen, 4, 3));

  util::Rng rng(5);
  std::vector<std::vector<float>> deltas(4);
  std::vector<double> weights{1.0, 4.0, 9.0, 16.0};
  std::vector<double> expected(kLen, 0.0);
  double weight_sum = 0.0;
  for (std::size_t c = 0; c < 4; ++c) {
    deltas[c].resize(kLen);
    for (auto& v : deltas[c]) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (std::size_t i = 0; i < kLen; ++i) {
      expected[i] += deltas[c][i] * weights[c];
    }
    weight_sum += weights[c];
    round.submit(c, deltas[c], weights[c]);
  }
  for (auto& v : expected) v /= weight_sum;

  const auto result = round.finalize();
  EXPECT_EQ(result.contributions, 4u);
  EXPECT_DOUBLE_EQ(result.weight_sum, weight_sum);
  for (std::size_t i = 0; i < kLen; ++i) {
    EXPECT_NEAR(result.mean_delta[i], expected[i], 1e-4);
  }
}

TEST(SmpcSyncRound, NonSubmittersAreDropoutsAndExcluded) {
  constexpr std::size_t kLen = 6;
  fl::SmpcSyncRound round(round_config(kLen, 5, 3));
  const std::vector<float> one(kLen, 1.0f);
  const std::vector<float> ten(kLen, 10.0f);
  round.submit(0, one, 1.0);
  round.submit(2, ten, 1.0);
  round.submit(4, one, 2.0);
  // Members 1 and 3 never submit: the protocol reconstructs their pairwise
  // masks and the mean covers exactly the three submitters.
  const auto result = round.finalize();
  EXPECT_EQ(result.contributions, 3u);
  // (1*1 + 10*1 + 1*2) / 4 = 3.25
  for (float v : result.mean_delta) EXPECT_NEAR(v, 3.25f, 1e-4);
}

TEST(SmpcSyncRound, BelowThresholdRefusesRelease) {
  fl::SmpcSyncRound round(round_config(4, 5, 3));
  round.submit(0, std::vector<float>(4, 1.0f), 1.0);
  round.submit(1, std::vector<float>(4, 1.0f), 1.0);
  EXPECT_THROW(round.finalize(), std::runtime_error);
}

TEST(SmpcSyncRound, RejectsMalformedSubmissions) {
  fl::SmpcSyncRound round(round_config(4, 3, 2));
  const std::vector<float> ok(4, 1.0f);
  EXPECT_THROW(round.submit(7, ok, 1.0), std::invalid_argument);
  EXPECT_THROW(round.submit(0, std::vector<float>(3, 1.0f), 1.0),
               std::invalid_argument);
  EXPECT_THROW(round.submit(0, ok, 0.0), std::invalid_argument);
  round.submit(0, ok, 1.0);
  EXPECT_THROW(round.submit(0, ok, 1.0), std::invalid_argument);
}

TEST(SmpcSyncRound, RejectsBadConfig) {
  EXPECT_THROW(fl::SmpcSyncRound(round_config(0, 3, 2)),
               std::invalid_argument);
  EXPECT_THROW(fl::SmpcSyncRound(round_config(4, 0, 2)),
               std::invalid_argument);
  EXPECT_THROW(fl::SmpcSyncRound(round_config(4, 3, 4)),
               std::invalid_argument);
}

TEST(SmpcSyncRound, UseAfterFinalizeRejected) {
  fl::SmpcSyncRound round(round_config(4, 2, 2));
  round.submit(0, std::vector<float>(4, 1.0f), 1.0);
  round.submit(1, std::vector<float>(4, 1.0f), 1.0);
  (void)round.finalize();
  EXPECT_THROW(round.submit(0, std::vector<float>(4, 1.0f), 1.0),
               std::logic_error);
  EXPECT_THROW(round.finalize(), std::logic_error);
}

/// Property sweep over (cohort, threshold, dropouts): the round always
/// yields the weighted mean over exactly the submitters, or refuses when
/// submitters fall below the threshold.
class SmpcSyncRoundSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(SmpcSyncRoundSweep, WeightedMeanOverSubmittersOrRefusal) {
  const auto [cohort, threshold, dropouts] = GetParam();
  if (dropouts >= cohort) GTEST_SKIP() << "need at least one submitter";
  constexpr std::size_t kLen = 8;
  fl::SmpcSyncRound round(round_config(kLen, cohort, threshold));

  util::Rng rng(cohort * 31 + threshold * 7 + dropouts);
  std::vector<double> expected(kLen, 0.0);
  double weight_sum = 0.0;
  const std::size_t submitters = cohort - dropouts;
  for (std::size_t c = 0; c < submitters; ++c) {
    std::vector<float> delta(kLen);
    for (auto& v : delta) v = static_cast<float>(rng.uniform(-2.0, 2.0));
    const double weight = 1.0 + rng.uniform_int(9);
    for (std::size_t i = 0; i < kLen; ++i) expected[i] += delta[i] * weight;
    weight_sum += weight;
    round.submit(c, delta, weight);
  }

  if (submitters < threshold) {
    EXPECT_THROW(round.finalize(), std::runtime_error);
    return;
  }
  const auto result = round.finalize();
  EXPECT_EQ(result.contributions, submitters);
  for (std::size_t i = 0; i < kLen; ++i) {
    EXPECT_NEAR(result.mean_delta[i], expected[i] / weight_sum, 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SmpcSyncRoundSweep,
    ::testing::Combine(::testing::Values<std::size_t>(3, 5, 8),
                       ::testing::Values<std::size_t>(2, 3),
                       ::testing::Values<std::size_t>(0, 1, 2)));

TEST(SmpcSyncRound, DrivesServerOptimizerLikePlaintextRound) {
  // End-to-end shape: the decoded mean feeds a server step exactly as a
  // plaintext SyncFL round would, to within fixed-point resolution.
  constexpr std::size_t kLen = 8;
  fl::SmpcSyncRound round(round_config(kLen, 3, 2));
  std::vector<std::vector<float>> deltas(3, std::vector<float>(kLen));
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < kLen; ++i) {
      deltas[c][i] = 0.1f * static_cast<float>(c + 1);
    }
    round.submit(c, deltas[c], 1.0);
  }
  const auto result = round.finalize();

  ml::ServerOptimizer secure_opt(
      kLen, {.kind = ml::ServerOptimizerKind::kFedSgd, .lr = 1.0f});
  ml::ServerOptimizer plain_opt(
      kLen, {.kind = ml::ServerOptimizerKind::kFedSgd, .lr = 1.0f});
  std::vector<float> secure_model(kLen, 0.0f), plain_model(kLen, 0.0f);
  secure_opt.step(secure_model, result.mean_delta);
  const std::vector<float> plain_mean(kLen, 0.2f);  // mean of 0.1/0.2/0.3
  plain_opt.step(plain_model, plain_mean);
  for (std::size_t i = 0; i < kLen; ++i) {
    EXPECT_NEAR(secure_model[i], plain_model[i], 1e-4);
  }
}

}  // namespace
}  // namespace papaya::smpc
