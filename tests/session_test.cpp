// Tests for the virtual-session layer (Sec. 6.1): the 4-stage participation
// protocol moves forward only, transient disconnects resume within the TTL,
// sustained silence expires the session, and tokens are unique.

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "fl/session.hpp"
#include "fl/shard_ring.hpp"

namespace papaya::fl {
namespace {

VirtualSessionManager::Options ttl(double seconds) {
  VirtualSessionManager::Options o;
  o.session_ttl_s = seconds;
  return o;
}

TEST(VirtualSession, OpensInSelectedStage) {
  VirtualSessionManager mgr;
  const std::uint64_t token = mgr.open(42, 1.0);
  const auto info = mgr.lookup(token);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->client_id, 42u);
  EXPECT_EQ(info->stage, SessionStage::kSelected);
  EXPECT_EQ(mgr.active_sessions(), 1u);
}

TEST(VirtualSession, StampsStreamShardFromTaskRing) {
  // A session records the aggregation shard its client's update stream
  // consistent-hashes to — the same ring the ShardedAggregator uses — so
  // the upload stage can route straight to the owning shard's queue.
  VirtualSessionManager::Options opts;
  opts.aggregator_shards = 4;
  VirtualSessionManager mgr(opts);
  const ConsistentHashRing ring(4);
  std::set<std::size_t> shards_seen;
  for (std::uint64_t client = 0; client < 64; ++client) {
    const auto info = mgr.lookup(mgr.open(client, 0.0));
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->shard, ring.shard_for(client));
    shards_seen.insert(info->shard);
  }
  EXPECT_EQ(shards_seen.size(), 4u);

  // Default (unsharded) tables stamp shard 0 for every session.
  VirtualSessionManager unsharded;
  EXPECT_EQ(unsharded.lookup(unsharded.open(7, 0.0))->shard, 0u);
}

TEST(VirtualSession, TokensAreUniqueAndNonZero) {
  VirtualSessionManager mgr;
  std::set<std::uint64_t> tokens;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t t = mgr.open(i, 0.0);
    EXPECT_NE(t, 0u);
    EXPECT_TRUE(tokens.insert(t).second);
  }
}

TEST(VirtualSession, FullProtocolWalk) {
  VirtualSessionManager mgr;
  const std::uint64_t t = mgr.open(1, 0.0);
  EXPECT_EQ(mgr.advance(t, SessionStage::kDownloading, 1.0),
            SessionOutcome::kOk);
  EXPECT_EQ(mgr.advance(t, SessionStage::kTraining, 2.0), SessionOutcome::kOk);
  EXPECT_EQ(mgr.advance(t, SessionStage::kReporting, 60.0),
            SessionOutcome::kOk);
  EXPECT_EQ(mgr.advance(t, SessionStage::kUploading, 61.0),
            SessionOutcome::kOk);
  EXPECT_EQ(mgr.complete(t, 62.0), SessionOutcome::kOk);
  EXPECT_EQ(mgr.lookup(t)->stage, SessionStage::kCompleted);
  EXPECT_EQ(mgr.active_sessions(), 0u);
}

TEST(VirtualSession, StagesMayBeSkippedButNeverRewound) {
  VirtualSessionManager mgr;
  const std::uint64_t t = mgr.open(1, 0.0);
  // A client with a cached model skips straight to training.
  EXPECT_EQ(mgr.advance(t, SessionStage::kTraining, 1.0), SessionOutcome::kOk);
  // A replayed "downloading" request must not rewind the session.
  EXPECT_EQ(mgr.advance(t, SessionStage::kDownloading, 2.0),
            SessionOutcome::kOutOfOrder);
  EXPECT_EQ(mgr.lookup(t)->stage, SessionStage::kTraining);
  // Re-sending the current stage is also rejected (idempotence guard).
  EXPECT_EQ(mgr.advance(t, SessionStage::kTraining, 3.0),
            SessionOutcome::kOutOfOrder);
}

TEST(VirtualSession, TerminalStagesOnlyViaCompleteOrAbort) {
  VirtualSessionManager mgr;
  const std::uint64_t t = mgr.open(1, 0.0);
  EXPECT_EQ(mgr.advance(t, SessionStage::kCompleted, 1.0),
            SessionOutcome::kOutOfOrder);
  EXPECT_EQ(mgr.advance(t, SessionStage::kAborted, 1.0),
            SessionOutcome::kOutOfOrder);
  EXPECT_EQ(mgr.abort(t, 2.0), SessionOutcome::kOk);
  // Terminal is final.
  EXPECT_EQ(mgr.advance(t, SessionStage::kTraining, 3.0),
            SessionOutcome::kTerminal);
  EXPECT_EQ(mgr.complete(t, 3.0), SessionOutcome::kTerminal);
  EXPECT_EQ(mgr.touch(t, 3.0), SessionOutcome::kTerminal);
}

TEST(VirtualSession, TransientDisconnectResumesWithinTtl) {
  VirtualSessionManager mgr(ttl(100.0));
  const std::uint64_t t = mgr.open(1, 0.0);
  ASSERT_EQ(mgr.advance(t, SessionStage::kTraining, 1.0), SessionOutcome::kOk);
  // 90 s of silence (device lost connectivity mid-training): still alive.
  EXPECT_EQ(mgr.touch(t, 91.0), SessionOutcome::kOk);
  EXPECT_EQ(mgr.lookup(t)->resumes, 1u);
  // The session proceeds normally after the resume.
  EXPECT_EQ(mgr.advance(t, SessionStage::kReporting, 92.0),
            SessionOutcome::kOk);
}

TEST(VirtualSession, SustainedSilenceExpires) {
  VirtualSessionManager mgr(ttl(100.0));
  const std::uint64_t t = mgr.open(1, 0.0);
  EXPECT_EQ(mgr.touch(t, 150.0), SessionOutcome::kExpired);
  EXPECT_EQ(mgr.lookup(t)->stage, SessionStage::kAborted);
}

TEST(VirtualSession, ExpireSweepAbortsOnlySilentSessions) {
  VirtualSessionManager mgr(ttl(100.0));
  const std::uint64_t quiet = mgr.open(1, 0.0);
  const std::uint64_t chatty = mgr.open(2, 0.0);
  (void)mgr.touch(chatty, 90.0);
  const auto aborted = mgr.expire(150.0);
  ASSERT_EQ(aborted.size(), 1u);
  EXPECT_EQ(aborted.front(), 1u);
  EXPECT_EQ(mgr.lookup(quiet)->stage, SessionStage::kAborted);
  EXPECT_EQ(mgr.lookup(chatty)->stage, SessionStage::kSelected);
  // The sweep is idempotent.
  EXPECT_TRUE(mgr.expire(151.0).empty());
}

TEST(VirtualSession, UnknownTokenRejected) {
  VirtualSessionManager mgr;
  EXPECT_EQ(mgr.touch(12345, 0.0), SessionOutcome::kUnknownToken);
  EXPECT_EQ(mgr.advance(12345, SessionStage::kTraining, 0.0),
            SessionOutcome::kUnknownToken);
  EXPECT_FALSE(mgr.lookup(12345).has_value());
}

TEST(VirtualSession, PruneRemovesOldTerminalSessionsOnly) {
  VirtualSessionManager mgr(ttl(1000.0));
  const std::uint64_t done = mgr.open(1, 0.0);
  const std::uint64_t live = mgr.open(2, 0.0);
  (void)mgr.complete(done, 10.0);
  EXPECT_EQ(mgr.prune_terminal(20.0, 60.0), 0u);  // too recent
  EXPECT_EQ(mgr.prune_terminal(100.0, 60.0), 1u);
  EXPECT_FALSE(mgr.lookup(done).has_value());
  EXPECT_TRUE(mgr.lookup(live).has_value());
  EXPECT_EQ(mgr.total_sessions(), 1u);
}

// Regression for the lock-discipline migration (util/sync.hpp): before the
// session table was internally locked, concurrent open() calls raced the
// SplitMix64 token stream and the std::map insert — duplicate or lost
// tokens under load.  Hammers the table from several threads and checks
// every token is unique and every session is present.  Runs under the
// sanitizer CI jobs (label: concurrency).
TEST(VirtualSession, ConcurrentOpensYieldUniqueTokens) {
  VirtualSessionManager mgr(ttl(1000.0));
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 250;

  std::vector<std::vector<std::uint64_t>> tokens(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mgr, &tokens, t] {
      tokens[t].reserve(kPerThread);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        tokens[t].push_back(mgr.open(t * kPerThread + i, 0.0));
      }
    });
  }
  for (auto& th : threads) th.join();

  std::set<std::uint64_t> unique;
  for (const auto& per_thread : tokens) {
    for (const std::uint64_t token : per_thread) {
      EXPECT_NE(token, 0u);
      EXPECT_TRUE(unique.insert(token).second) << "duplicate token";
    }
  }
  EXPECT_EQ(unique.size(), kThreads * kPerThread);
  EXPECT_EQ(mgr.total_sessions(), kThreads * kPerThread);
  // Every session is intact and individually addressable.
  for (const std::uint64_t token : unique) {
    EXPECT_TRUE(mgr.lookup(token).has_value());
  }
}

TEST(VirtualSession, StageNamesCoverAllStages) {
  EXPECT_STREQ(to_string(SessionStage::kSelected), "selected");
  EXPECT_STREQ(to_string(SessionStage::kDownloading), "downloading");
  EXPECT_STREQ(to_string(SessionStage::kTraining), "training");
  EXPECT_STREQ(to_string(SessionStage::kReporting), "reporting");
  EXPECT_STREQ(to_string(SessionStage::kUploading), "uploading");
  EXPECT_STREQ(to_string(SessionStage::kCompleted), "completed");
  EXPECT_STREQ(to_string(SessionStage::kAborted), "aborted");
}

}  // namespace
}  // namespace papaya::fl
