// Tests for the pluggable aggregation-strategy layer: the UpdateView wire
// parser, the AggStats counters, the decide_strategy() picker table, the
// three fold backends (locked / morsel / striped), exactness across
// mid-stream strategy switches (the conservation hammer), registration-time
// validation of TaskConfig::aggregator_shards and ::aggregation_strategy,
// SecAgg flush-threshold policy, simulator-level strategy equivalence, and
// the skewed-update-size graceful-degradation sweep.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "fl/agg_strategy.hpp"
#include "fl/aggregator.hpp"
#include "fl/coordinator.hpp"
#include "fl/model_update.hpp"
#include "fl/parallel_agg.hpp"
#include "fl/secure_buffer.hpp"
#include "fl/sharded_agg.hpp"
#include "sim/fl_simulator.hpp"

namespace papaya::fl {
namespace {

constexpr AggStrategy kAllForced[] = {AggStrategy::kLocked,
                                      AggStrategy::kMorsel,
                                      AggStrategy::kStriped};

util::Bytes make_update(std::uint64_t client, std::size_t size, float value,
                        std::size_t examples = 1) {
  ModelUpdate u;
  u.client_id = client;
  u.num_examples = examples;
  u.delta.assign(size, value);
  return u.serialize();
}

/// Arbitrary (not exact-in-float) deterministic delta, for bit-identity
/// checks: per-element values vary so permuted fold orders cannot hide.
util::Bytes make_varied_update(std::uint64_t client, std::size_t size) {
  ModelUpdate u;
  u.client_id = client;
  u.num_examples = 1 + client % 5;
  u.delta.resize(size);
  for (std::size_t i = 0; i < size; ++i) {
    const std::uint32_t h =
        static_cast<std::uint32_t>(i * 2654435761u + client * 40503u);
    u.delta[i] = 0.001f * static_cast<float>(h % 2000) - 1.0f;
  }
  return u.serialize();
}

// ------------------------------------------------------------- UpdateView --

TEST(UpdateView, ParsesWireFormatBitExactly) {
  ModelUpdate u;
  u.client_id = 9;
  u.initial_version = 3;
  u.num_examples = 7;
  u.delta = {1.5f, -2.25f, 0.0f, -0.0f, 3.14159f};
  const util::Bytes bytes = u.serialize();
  const auto view = UpdateView::parse(bytes, u.delta.size());
  ASSERT_TRUE(view.has_value());
  ASSERT_EQ(view->count, u.delta.size());
  for (std::size_t i = 0; i < u.delta.size(); ++i) {
    std::uint32_t expect_bits, got_bits;
    std::memcpy(&expect_bits, &u.delta[i], 4);
    const float got = view->at(i);
    std::memcpy(&got_bits, &got, 4);
    EXPECT_EQ(got_bits, expect_bits) << "element " << i;
  }
  std::vector<float> copied(view->count);
  view->copy_to(copied);
  EXPECT_EQ(copied, u.delta);
}

TEST(UpdateView, RejectsSizeMismatchAndTruncation) {
  const util::Bytes bytes = make_update(1, 8, 1.0f);
  EXPECT_TRUE(UpdateView::parse(bytes, 8).has_value());
  EXPECT_FALSE(UpdateView::parse(bytes, 7).has_value());  // wrong model size
  EXPECT_FALSE(UpdateView::parse(bytes, 9).has_value());
  util::Bytes truncated(bytes.begin(), bytes.begin() + 40);  // mid-payload
  EXPECT_FALSE(UpdateView::parse(truncated, 8).has_value());
  util::Bytes header_only(bytes.begin(), bytes.begin() + 16);
  EXPECT_FALSE(UpdateView::parse(header_only, 8).has_value());
}

// -------------------------------------------------------- Strategy naming --

TEST(AggStrategyEnum, NamesRoundTrip) {
  for (AggStrategy s : {AggStrategy::kAuto, AggStrategy::kLocked,
                        AggStrategy::kMorsel, AggStrategy::kStriped}) {
    const auto parsed = parse_agg_strategy(to_string(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(parse_agg_strategy("mutex").has_value());
  EXPECT_TRUE(valid_agg_strategy(AggStrategy::kAuto));
  EXPECT_FALSE(valid_agg_strategy(static_cast<AggStrategy>(42)));
}

// ----------------------------------------------------------- Picker table --

TEST(DecideStrategy, FollowsDecisionTable) {
  const AggTuning tuning;  // small-update threshold: 16 KiB payload
  AggStatsSnapshot window;

  // No traffic observed: keep whatever is running.
  EXPECT_EQ(decide_strategy(window, AggStrategy::kLocked, tuning, 4),
            AggStrategy::kLocked);
  EXPECT_EQ(decide_strategy(window, AggStrategy::kMorsel, tuning, 4),
            AggStrategy::kMorsel);

  // Small updates (payload <= threshold) with several workers: the striped
  // atomic fold removes the per-fold lock traffic they contend on.
  window.enqueued = 10;
  window.enqueued_bytes = 10 * (32 + 1024);  // 1 KiB payloads
  EXPECT_EQ(decide_strategy(window, AggStrategy::kLocked, tuning, 4),
            AggStrategy::kStriped);

  // A single-worker pool has no contention to avoid: per-element atomics
  // are pure overhead, so morsel's lock-free local fold wins every shape.
  EXPECT_EQ(decide_strategy(window, AggStrategy::kLocked, tuning, 1),
            AggStrategy::kMorsel);

  // Large updates: morsel-driven thread-local pre-aggregation.
  window.enqueued_bytes = 10 * (32 + (64u << 10));  // 64 KiB payloads
  EXPECT_EQ(decide_strategy(window, AggStrategy::kStriped, tuning, 4),
            AggStrategy::kMorsel);

  // Exactly at the threshold counts as small.
  window.enqueued = 1;
  window.enqueued_bytes = 32 + (16u << 10);
  EXPECT_EQ(decide_strategy(window, AggStrategy::kLocked, tuning, 4),
            AggStrategy::kStriped);
}

// ---------------------------------------------- Bit-identity (one worker) --

TEST(AggStrategySuite, SingleWorkerPoolsAreBitIdenticalAcrossStrategies) {
  // With one worker every strategy folds the same updates, in the same FIFO
  // order, with the identical per-element expression — so the reduced
  // buffers must match bit-for-bit, arbitrary values included.
  constexpr std::size_t kModel = 257;  // odd, exercises non-aligned tails
  std::vector<ParallelAggregator::Reduced> results;
  for (const AggStrategy strategy : kAllForced) {
    ParallelAggregator agg(kModel, /*num_threads=*/1, /*num_intermediates=*/1,
                           /*clip_norm=*/0.0f, /*drain_batch=*/3, strategy);
    for (std::uint64_t c = 0; c < 32; ++c) {
      agg.enqueue(make_varied_update(c, kModel), 0.25 + 0.5 * (c % 4));
    }
    results.push_back(agg.reduce_and_reset());
  }
  for (std::size_t s = 1; s < results.size(); ++s) {
    EXPECT_EQ(results[0].mean_delta, results[s].mean_delta)
        << "strategy " << to_string(kAllForced[s]) << " diverged from locked";
    EXPECT_EQ(results[0].weight_sum, results[s].weight_sum);
    EXPECT_EQ(results[0].count, results[s].count);
  }
}

TEST(AggStrategySuite, ClippedFoldsAreBitIdenticalAcrossStrategies) {
  constexpr std::size_t kModel = 96;
  std::vector<ParallelAggregator::Reduced> results;
  for (const AggStrategy strategy : kAllForced) {
    ParallelAggregator agg(kModel, 1, 1, /*clip_norm=*/0.5f,
                           /*drain_batch=*/1, strategy);
    for (std::uint64_t c = 0; c < 12; ++c) {
      agg.enqueue(make_varied_update(c, kModel), 1.0 + c);
    }
    results.push_back(agg.reduce_and_reset());
  }
  for (std::size_t s = 1; s < results.size(); ++s) {
    EXPECT_EQ(results[0].mean_delta, results[s].mean_delta)
        << "strategy " << to_string(kAllForced[s]) << " diverged from locked";
  }
}

// --------------------------------------- Conservation (mid-stream switch) --

TEST(AggStrategySuite, DeterministicSwitchMidBufferConservesExactly) {
  // Fold one buffer's updates under three different strategies — drain
  // between groups so each group's backend is fully deterministic — then
  // reduce once.  The merge must account for every update exactly.
  constexpr std::size_t kModel = 64;
  constexpr std::size_t kPerGroup = 20;
  ParallelAggregator agg(kModel, /*num_threads=*/2, /*num_intermediates=*/2,
                         0.0f, /*drain_batch=*/4, AggStrategy::kLocked);
  std::uint64_t client = 0;
  double expected_weight = 0.0;
  for (const AggStrategy strategy : kAllForced) {
    agg.force_strategy(strategy);
    for (std::size_t i = 0; i < kPerGroup; ++i, ++client) {
      // Unit deltas and integer weights: sums stay exact in float under any
      // fold interleaving.
      agg.enqueue(make_update(client, kModel, 1.0f), 1.0 + client % 3);
      expected_weight += 1.0 + client % 3;
    }
    agg.drain();  // group fully folded under `strategy`
  }
  // Raw sums (not the normalized mean): with unit deltas and small integer
  // weights every partial sum is exact in float, so the assertion is exact
  // under any fold order or split across accumulators.
  const auto reduced = agg.reduce_and_reset_sums();
  EXPECT_EQ(reduced.count, 3 * kPerGroup);
  EXPECT_DOUBLE_EQ(reduced.weight_sum, expected_weight);
  for (const float v : reduced.mean_delta) {
    EXPECT_EQ(v, static_cast<float>(expected_weight));
  }
  // Nothing left behind: a second reduce sees an empty buffer.
  const auto empty = agg.reduce_and_reset_sums();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.weight_sum, 0.0);
}

TEST(AggStrategySuite, RacingSwitchHammerConservesUnderConcurrency) {
  // The adversarial variant: enqueue from two producer threads while a
  // third cycles force_strategy() as fast as it can.  Wherever each switch
  // lands — mid-run, mid-buffer, between enqueue and drain — every update
  // must fold into exactly one live accumulator and merge at the reduce.
  constexpr std::size_t kModel = 48;
  constexpr std::size_t kPerProducer = 300;
  constexpr int kBuffers = 4;
  ParallelAggregator agg(kModel, /*num_threads=*/3, /*num_intermediates=*/2,
                         0.0f, /*drain_batch=*/5, AggStrategy::kLocked);
  for (int buffer = 0; buffer < kBuffers; ++buffer) {
    std::atomic<bool> stop{false};
    std::thread flipper([&] {
      std::size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        agg.force_strategy(kAllForced[i++ % 3]);
        std::this_thread::yield();
      }
    });
    std::thread producers[2];
    for (int p = 0; p < 2; ++p) {
      producers[p] = std::thread([&, p] {
        for (std::size_t i = 0; i < kPerProducer; ++i) {
          agg.enqueue(make_update(p * kPerProducer + i, kModel, 1.0f), 1.0);
        }
      });
    }
    for (auto& t : producers) t.join();
    stop.store(true, std::memory_order_relaxed);
    flipper.join();
    const auto reduced = agg.reduce_and_reset_sums();
    EXPECT_EQ(reduced.count, 2 * kPerProducer) << "buffer " << buffer;
    EXPECT_DOUBLE_EQ(reduced.weight_sum, 2.0 * kPerProducer);
    for (const float v : reduced.mean_delta) {
      EXPECT_EQ(v, static_cast<float>(2 * kPerProducer));
    }
  }
}

TEST(AggStrategySuite, AutoPoolConservesUnderConcurrentReduce) {
  // The PR-2 conservation suite's shape, under kAuto: enqueue concurrently
  // with reduces; across all reduces every update is counted exactly once.
  constexpr std::size_t kModel = 32;
  constexpr std::size_t kUpdates = 400;
  ParallelAggregator agg(kModel, 3, 3, 0.0f, 2, AggStrategy::kAuto);
  std::thread producer([&] {
    for (std::size_t i = 0; i < kUpdates; ++i) {
      agg.enqueue(make_update(i, kModel, 1.0f), 1.0);
    }
  });
  double weight = 0.0;
  std::size_t count = 0;
  std::vector<double> sums(kModel, 0.0);
  for (int r = 0; r < 5; ++r) {
    const auto part = agg.reduce_and_reset_sums();
    weight += part.weight_sum;
    count += part.count;
    for (std::size_t i = 0; i < kModel; ++i) sums[i] += part.mean_delta[i];
  }
  producer.join();
  const auto last = agg.reduce_and_reset_sums();
  weight += last.weight_sum;
  count += last.count;
  for (std::size_t i = 0; i < kModel; ++i) sums[i] += last.mean_delta[i];
  EXPECT_EQ(count, kUpdates);
  EXPECT_DOUBLE_EQ(weight, static_cast<double>(kUpdates));
  for (const double v : sums) EXPECT_DOUBLE_EQ(v, static_cast<double>(kUpdates));
}

// ------------------------------------------------------------ Morsel paths --

TEST(AggStrategySuite, MorselSpillEveryConservesAndCountsSpills) {
  constexpr std::size_t kModel = 40;
  AggTuning tuning;
  tuning.morsel_spill_every = 3;  // force frequent local -> global flushes
  ParallelAggregator agg(kModel, 2, 2, 0.0f, 1, AggStrategy::kMorsel, tuning);
  constexpr std::size_t kUpdates = 50;
  for (std::size_t i = 0; i < kUpdates; ++i) {
    agg.enqueue(make_update(i, kModel, 1.0f), 1.0);
  }
  const auto reduced = agg.reduce_and_reset_sums();
  EXPECT_EQ(reduced.count, kUpdates);
  EXPECT_DOUBLE_EQ(reduced.weight_sum, static_cast<double>(kUpdates));
  for (const float v : reduced.mean_delta) {
    EXPECT_EQ(v, static_cast<float>(kUpdates));
  }
  EXPECT_GT(agg.stats_snapshot().spills, 0u);
}

TEST(AggStrategySuite, MorselZeroLocalBudgetOverflowsToGlobalPartitions) {
  // A zero local budget disables every thread-local buffer: all folds take
  // the locked-overflow path.  Results must be unaffected.
  constexpr std::size_t kModel = 40;
  AggTuning tuning;
  tuning.morsel_local_budget_bytes = 0;
  ParallelAggregator agg(kModel, 2, 2, 0.0f, 1, AggStrategy::kMorsel, tuning);
  constexpr std::size_t kUpdates = 30;
  for (std::size_t i = 0; i < kUpdates; ++i) {
    agg.enqueue(make_update(i, kModel, 1.0f), 1.0);
  }
  const auto reduced = agg.reduce_and_reset_sums();
  EXPECT_EQ(reduced.count, kUpdates);
  for (const float v : reduced.mean_delta) {
    EXPECT_EQ(v, static_cast<float>(kUpdates));
  }
  EXPECT_GT(agg.stats_snapshot().lock_acquires, 0u);
}

TEST(AggStrategySuite, MalformedUpdatesDropUnderEveryStrategy) {
  constexpr std::size_t kModel = 16;
  for (const AggStrategy strategy : kAllForced) {
    ParallelAggregator agg(kModel, 1, 1, 0.0f, 1, strategy);
    agg.enqueue(make_update(0, kModel, 1.0f), 1.0);
    agg.enqueue(make_update(1, kModel + 3, 1.0f), 1.0);  // wrong size: drop
    agg.enqueue(make_update(2, kModel, 1.0f), 1.0);
    const auto reduced = agg.reduce_and_reset();
    EXPECT_EQ(reduced.count, 2u) << to_string(strategy);
    EXPECT_EQ(agg.stats_snapshot().dropped, 1u) << to_string(strategy);
  }
}

// ----------------------------------------------------- Adaptive end-to-end --

TEST(AggStrategySuite, AutoPicksStripedForSmallAndMorselForLargeUpdates) {
  {
    // Striped needs both signals: small payloads AND a multi-worker pool
    // (with one worker there is no lock contention to avoid).
    ParallelAggregator small(64, 2, 2, 0.0f, 1, AggStrategy::kAuto);
    EXPECT_EQ(small.configured_strategy(), AggStrategy::kAuto);
    EXPECT_EQ(small.active_strategy(), AggStrategy::kLocked);  // startup
    small.enqueue(make_update(0, 64, 1.0f), 1.0);
    small.drain();
    EXPECT_EQ(small.active_strategy(), AggStrategy::kStriped);
  }
  {
    // Same small updates, single worker: morsel's lock-free local fold.
    ParallelAggregator small(64, 1, 1, 0.0f, 1, AggStrategy::kAuto);
    small.enqueue(make_update(0, 64, 1.0f), 1.0);
    small.drain();
    EXPECT_EQ(small.active_strategy(), AggStrategy::kMorsel);
  }
  {
    // 32 Ki floats = 128 KiB payload, far above the 16 KiB small-update bar.
    ParallelAggregator large(32768, 1, 1, 0.0f, 1, AggStrategy::kAuto);
    large.enqueue(make_update(0, 32768, 1.0f), 1.0);
    large.drain();
    EXPECT_EQ(large.active_strategy(), AggStrategy::kMorsel);
  }
}

TEST(AggStrategySuite, StatsCountersTrackTraffic) {
  constexpr std::size_t kModel = 24;
  ParallelAggregator agg(kModel, 1, 1, 0.0f, 1, AggStrategy::kLocked);
  const util::Bytes update = make_update(0, kModel, 1.0f);
  const std::size_t update_bytes = update.size();
  for (int i = 0; i < 6; ++i) agg.enqueue(update, 1.0);
  agg.drain();
  const auto reduced = agg.reduce_and_reset();
  EXPECT_EQ(reduced.count, 6u);
  const AggStatsSnapshot stats = agg.stats_snapshot();
  EXPECT_EQ(stats.enqueued, 6u);
  EXPECT_EQ(stats.enqueued_bytes, 6 * update_bytes);
  EXPECT_EQ(stats.folded, 6u);
  EXPECT_EQ(stats.reduces, 1u);
  EXPECT_GE(stats.max_queue_depth, 1u);
  EXPECT_DOUBLE_EQ(stats.avg_update_bytes(),
                   static_cast<double>(update_bytes));
}

// ------------------------------------------------------ Sharded equivalence --

TEST(AggStrategySuite, ShardedReduceBitIdenticalAcrossStrategiesAndSwitches) {
  // Acceptance criterion: the cross-shard reduce is bit-identical regardless
  // of strategy (single-threaded shards fold in arrival order) — including a
  // run whose shards switched strategy mid-stream between drains.
  auto run = [](AggStrategy strategy, bool flip_midway,
                bool exact_values) -> ParallelAggregator::Reduced {
    ShardedAggregator::Config cfg;
    cfg.model_size = 128;
    cfg.num_shards = 4;
    cfg.threads_per_shard = 1;
    cfg.strategy = strategy;
    ShardedAggregator sharded(cfg);
    for (std::uint64_t c = 0; c < 64; ++c) {
      if (flip_midway && c == 32) {
        sharded.drain();  // make the switch point deterministic
        sharded.force_strategy(AggStrategy::kStriped);
      }
      sharded.enqueue(c,
                      exact_values ? make_update(c, 128, 1.0f + c % 4)
                                   : make_varied_update(c, 128),
                      1.0 + c % 3);
    }
    return sharded.reduce_and_reset();
  };
  // Pure single-strategy runs: arbitrary values, bit-identical — each
  // shard's single worker performs the identical fold chain.
  const auto locked = run(AggStrategy::kLocked, false, false);
  for (const AggStrategy strategy :
       {AggStrategy::kMorsel, AggStrategy::kStriped, AggStrategy::kAuto}) {
    const auto other = run(strategy, false, false);
    EXPECT_EQ(locked.mean_delta, other.mean_delta) << to_string(strategy);
    EXPECT_EQ(locked.weight_sum, other.weight_sum);
    EXPECT_EQ(locked.count, other.count);
  }
  // Mid-stream switch: folds split across two accumulators, which reorders
  // the float additions (s_k + (x1 + x2) vs ((s_k + x1) + x2)) — so the
  // bit-identity claim is made where it is well-defined, on exact-in-float
  // values, where any association of the sum has one representation.
  const auto exact_locked = run(AggStrategy::kLocked, false, true);
  const auto switched = run(AggStrategy::kLocked, true, true);
  EXPECT_EQ(exact_locked.mean_delta, switched.mean_delta)
      << "mid-stream locked->striped switch perturbed the reduce";
  EXPECT_EQ(exact_locked.weight_sum, switched.weight_sum);
  EXPECT_EQ(exact_locked.count, switched.count);
}

// ------------------------------------------------ Registration validation --

TEST(AggStrategyValidation, AggregatorNormalizesZeroShardsAtRegistration) {
  // Satellite: 0 must never reach the ring modulo, even when assign_task is
  // called directly (bypassing Coordinator placement).
  Aggregator agg("a1", 1);
  TaskConfig config;
  config.name = "t";
  config.model_size = 8;
  config.aggregator_shards = 0;
  agg.assign_task(config, std::vector<float>(8, 0.0f), {});
  EXPECT_EQ(agg.task_shards("t"), 1u);
  EXPECT_EQ(agg.task_strategy("t"), AggStrategy::kAuto);
}

TEST(AggStrategyValidation, AggregatorRejectsOutOfEnumStrategy) {
  Aggregator agg("a1", 1);
  TaskConfig config;
  config.name = "t";
  config.model_size = 8;
  config.aggregation_strategy = static_cast<AggStrategy>(42);
  EXPECT_THROW(agg.assign_task(config, std::vector<float>(8, 0.0f), {}),
               std::invalid_argument);
}

TEST(AggStrategyValidation, CoordinatorRejectsAtSubmitAndClampsAtAdopt) {
  Coordinator coordinator(7);
  Aggregator agg("a1", 1);
  coordinator.register_aggregator(agg, 0.0);
  TaskConfig config;
  config.name = "t";
  config.model_size = 8;
  config.aggregation_strategy = static_cast<AggStrategy>(200);
  EXPECT_THROW(
      coordinator.submit_task(config, std::vector<float>(8, 0.0f), {}),
      std::invalid_argument);
  // Adoption is the recovery path: garbage clamps to kAuto instead of
  // refusing to recover the task.
  coordinator.adopt_task(config, {});
  EXPECT_EQ(coordinator.task_strategy("t"), AggStrategy::kAuto);
  // Valid strategies survive placement verbatim.
  config.aggregation_strategy = AggStrategy::kMorsel;
  config.name = "t2";
  coordinator.submit_task(config, std::vector<float>(8, 0.0f), {});
  EXPECT_EQ(coordinator.task_strategy("t2"), AggStrategy::kMorsel);
  EXPECT_EQ(agg.task_strategy("t2"), AggStrategy::kMorsel);
}

// ------------------------------------------------- SecAgg flush thresholds --

TEST(AggStrategyValidation, SecureBufferFlushThresholdFollowsStrategy) {
  // Strategy-controlled batch-drain deferral (legal because batched ≡
  // per-update is bit-identical; the threshold is pure amortization
  // policy).
  const std::size_t model = 4, goal = 10, seed = 1;
  EXPECT_EQ(SecureBufferManager(model, goal, seed, 4, AggStrategy::kLocked)
                .flush_threshold(),
            1u);
  EXPECT_EQ(SecureBufferManager(model, goal, seed, 4, AggStrategy::kMorsel)
                .flush_threshold(),
            goal);
  EXPECT_EQ(SecureBufferManager(model, goal, seed, 4, AggStrategy::kAuto)
                .flush_threshold(),
            4u);
  EXPECT_EQ(SecureBufferManager(model, goal, seed, 4, AggStrategy::kStriped)
                .flush_threshold(),
            4u);
  // Sequential session ignores the strategy.
  EXPECT_EQ(SecureBufferManager(model, goal, seed, 1, AggStrategy::kMorsel)
                .flush_threshold(),
            1u);
}

// ------------------------------------------------- Simulator equivalence --

sim::SimulationConfig sim_config() {
  sim::SimulationConfig cfg;
  cfg.task.name = "lm";
  cfg.task.mode = TrainingMode::kAsync;
  cfg.task.concurrency = 12;
  cfg.task.aggregation_goal = 2;
  cfg.population.num_devices = 100;
  cfg.corpus.vocab_size = 32;
  cfg.model.vocab_size = 32;
  cfg.model.embed_dim = 6;
  cfg.model.hidden_dim = 8;
  cfg.trainer.compute_losses = false;
  cfg.max_server_steps = 20;
  cfg.eval_every_steps = 10;
  cfg.seed = 5;
  return cfg;
}

TEST(AggStrategySim, StrategyDoesNotPerturbTraining) {
  // The simulator's aggregation pools are single-threaded, so every fold
  // backend performs the identical float operations in arrival order: the
  // trained model must be bit-identical under any strategy, adaptive
  // included.
  sim::SimulationConfig cfg = sim_config();
  cfg.task.aggregator_shards = 2;
  cfg.task.aggregation_strategy = AggStrategy::kLocked;
  sim::FlSimulator locked(cfg);
  const auto golden = locked.run().final_model;
  for (const AggStrategy strategy :
       {AggStrategy::kMorsel, AggStrategy::kStriped, AggStrategy::kAuto}) {
    cfg.task.aggregation_strategy = strategy;
    sim::FlSimulator other(cfg);
    EXPECT_EQ(golden, other.run().final_model) << to_string(strategy);
  }
}

// --------------------------------------------- Skewed-size degradation --

TEST(AggStrategySweep, AutoDegradesGracefullyOnSkewedUpdateSizes) {
  // Each forced strategy has an adversarial shape (striped on huge updates,
  // locked on tiny contended ones).  The adaptive picker must never be
  // badly wrong on either extreme: on each shape, auto stays within a
  // generous catastrophe bound of the locked baseline.  The strict 10%
  // gate for committed numbers lives in BM_AggregationSkew via
  // scripts/bench.sh --compare; a tight timing assertion here would flake
  // on loaded single-core CI runners, violating tier-1 stability.
  // PAPAYA_STRICT_SKEW=1 opts into the 1.10x bound locally.
  const bool strict = std::getenv("PAPAYA_STRICT_SKEW") != nullptr;
  const double bound = strict ? 1.10 : 3.0;
  struct Shape {
    const char* name;
    std::size_t model_size;
    std::size_t updates;
  };
  const Shape shapes[] = {{"small", 256, 192}, {"large", 65536, 24}};
  for (const Shape& shape : shapes) {
    auto time_strategy = [&](AggStrategy strategy) {
      ShardedAggregator::Config cfg;
      cfg.model_size = shape.model_size;
      cfg.num_shards = 2;
      cfg.threads_per_shard = 1;
      cfg.strategy = strategy;
      ShardedAggregator sharded(cfg);
      // Warm-up buffer so auto's picker has a window before timing starts.
      for (std::uint64_t c = 0; c < 8; ++c) {
        sharded.enqueue(c, make_update(c, shape.model_size, 0.5f), 1.0);
      }
      sharded.reduce_and_reset();
      const auto start = std::chrono::steady_clock::now();
      for (std::uint64_t c = 0; c < shape.updates; ++c) {
        sharded.enqueue(c, make_update(c, shape.model_size, 0.5f), 1.0);
      }
      sharded.reduce_and_reset();
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
          .count();
    };
    // Best of 3 per strategy: scheduler noise on shared runners dwarfs a
    // single measurement.
    auto best_of = [&](AggStrategy strategy) {
      double best = time_strategy(strategy);
      for (int r = 1; r < 3; ++r) best = std::min(best, time_strategy(strategy));
      return best;
    };
    const double locked = best_of(AggStrategy::kLocked);
    const double aut = best_of(AggStrategy::kAuto);
    EXPECT_LT(aut, locked * bound)
        << shape.name << ": auto " << aut << "s vs locked " << locked << "s";
  }
}

}  // namespace
}  // namespace papaya::fl
