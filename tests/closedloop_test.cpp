// The RNG stream hierarchy and closed-loop scheduling (ctest -L closedloop).
//
// Determinism contract under test:
//  1. util::StreamRng draw i is a pure function of (root, entity, purpose, i).
//  2. sim::SimStreams legacy mode is byte-compatible with the pre-stream
//     shared xoshiro consumed in call order (the migration shim).
//  3. Per-entity mode draws are independent of request interleaving — the
//     property that makes a reactive (closed-loop) event schedule legal.
//  4. TaskConfig::closed_loop_clients changes *when* reports arrive (the
//     pipelined arrival process), never *what* any device draws.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "fl/client_runtime.hpp"
#include "sim/fl_simulator.hpp"
#include "sim/streams.hpp"
#include "util/rng.hpp"

namespace papaya::sim {
namespace {

// ---------------------------------------------------------------- StreamRng --

TEST(StreamRng, DrawIsPureFunctionOfKeyAndIndex) {
  util::StreamRng a(7, 3, 2);
  util::StreamRng b(7, 3, 2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());

  // Random access: seeking back replays the identical suffix.
  a.seek(10);
  util::StreamRng c(7, 3, 2);
  c.seek(10);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(), c.next());
  EXPECT_EQ(a.draw_index(), 60u);
}

TEST(StreamRng, MatchesSplitMix64OverTheSameKey) {
  // The stream *is* SplitMix64 started at its key, with the counter held
  // explicitly — so existing SplitMix64-derived behaviour is embeddable.
  const std::uint64_t key = util::StreamRng::derive_key(11, 4, 9);
  util::StreamRng stream(key);
  util::SplitMix64 reference(key);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(stream.next(), reference.next());
}

TEST(StreamRng, HierarchicalKeysDecorrelate) {
  // Sibling streams (same root, different entity or purpose) must not
  // collide or share prefixes.
  util::StreamRng base(5, 1, 1);
  util::StreamRng other_entity(5, 2, 1);
  util::StreamRng other_purpose(5, 1, 2);
  util::StreamRng other_root(6, 1, 1);
  EXPECT_NE(base.key(), other_entity.key());
  EXPECT_NE(base.key(), other_purpose.key());
  EXPECT_NE(base.key(), other_root.key());
  EXPECT_NE(base.next(), other_entity.next());
  EXPECT_NE(base.next(), other_purpose.next());
}

TEST(StreamRng, DistributionsBehave) {
  util::StreamRng rng(13, 0, 1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(rng.uniform_int(17), 17u);
    EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
    EXPECT_GT(rng.exponential(2.0), 0.0);
  }
  // Bernoulli frequency sanity.
  util::StreamRng coin(13, 0, 2);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += coin.bernoulli(0.3);
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

// --------------------------------------------------------------- SimStreams --

TEST(SimStreams, LegacyModeIsTheSharedSequenceInCallOrder) {
  // The migration shim: whatever (entity, purpose) a request carries, legacy
  // mode consumes the one shared xoshiro exactly as the pre-stream simulator
  // did (seed ^ 0x51713, call order).
  SimStreams streams(42, RngStreamMode::kSharedLegacy);
  util::Rng reference(42 ^ 0x51713ULL);
  EXPECT_DOUBLE_EQ(streams.uniform01(3, StreamPurpose::kExecTime),
                   reference.uniform());
  EXPECT_DOUBLE_EQ(streams.exponential(9, StreamPurpose::kCheckInBackoff, 0.5),
                   reference.exponential(0.5));
  EXPECT_EQ(streams.bernoulli(1, StreamPurpose::kDropout, 0.4),
            reference.bernoulli(0.4));
  EXPECT_EQ(streams.uniform_int(SimStreams::kServerEntity,
                                StreamPurpose::kRouting, 5),
            reference.uniform_int(5));
  EXPECT_DOUBLE_EQ(streams.uniform(7, StreamPurpose::kCheckInBackoff, 2.0, 9.0),
                   reference.uniform(2.0, 9.0));
}

TEST(SimStreams, PerEntityDrawsAreIndependentOfInterleaving) {
  // Same requests, two different global interleavings: every
  // (entity, purpose) sequence must come out identical.  This is the
  // invariant that lets a closed-loop schedule reorder events freely.
  SimStreams a(7, RngStreamMode::kPerEntity);
  SimStreams b(7, RngStreamMode::kPerEntity);

  std::vector<double> a_exec_1, a_exec_2, a_back_1;
  for (int i = 0; i < 20; ++i) {
    a_exec_1.push_back(a.uniform01(1, StreamPurpose::kExecTime));
    a_back_1.push_back(a.exponential(1, StreamPurpose::kCheckInBackoff, 2.0));
    a_exec_2.push_back(a.uniform01(2, StreamPurpose::kExecTime));
  }

  std::vector<double> b_exec_1, b_exec_2, b_back_1;
  for (int i = 0; i < 20; ++i) {  // entity 2 first, purposes swapped
    b_exec_2.push_back(b.uniform01(2, StreamPurpose::kExecTime));
  }
  for (int i = 0; i < 20; ++i) {
    b_back_1.push_back(b.exponential(1, StreamPurpose::kCheckInBackoff, 2.0));
    b_exec_1.push_back(b.uniform01(1, StreamPurpose::kExecTime));
  }

  EXPECT_EQ(a_exec_1, b_exec_1);
  EXPECT_EQ(a_exec_2, b_exec_2);
  EXPECT_EQ(a_back_1, b_back_1);
}

TEST(SimStreams, TrainingSeedIsLegacyCompatibleAndScheduleFree) {
  SimStreams legacy(21, RngStreamMode::kSharedLegacy);
  EXPECT_EQ(legacy.training_seed(5, 3), 21ULL ^ (5ULL * 0x7f4a7c15ULL) ^ 3ULL);

  // Per-entity: derived from the stream hierarchy, untouched by other draws.
  SimStreams streams(21, RngStreamMode::kPerEntity);
  const std::uint64_t before = streams.training_seed(5, 3);
  (void)streams.uniform01(5, StreamPurpose::kExecTime);
  (void)streams.uniform01(6, StreamPurpose::kDropout);
  EXPECT_EQ(streams.training_seed(5, 3), before);
  EXPECT_NE(streams.training_seed(5, 3), streams.training_seed(6, 3));
  EXPECT_NE(streams.training_seed(5, 3), streams.training_seed(5, 4));
}

// ---------------------------------------------------- Closed-loop simulator --

SimulationConfig small_config() {
  SimulationConfig cfg;
  cfg.task.name = "lm";
  cfg.task.mode = fl::TrainingMode::kAsync;
  cfg.task.concurrency = 12;
  cfg.task.aggregation_goal = 2;
  cfg.population.num_devices = 100;
  cfg.corpus.vocab_size = 32;
  cfg.model.vocab_size = 32;
  cfg.model.embed_dim = 6;
  cfg.model.hidden_dim = 8;
  cfg.trainer.compute_losses = false;
  cfg.max_server_steps = 15;
  cfg.eval_every_steps = 10;
  cfg.seed = 5;
  // Slow uplink + small chunks: uploads are a real fraction of a
  // participation and pipeline across several chunks, so the closed-loop
  // arrival process is measurably earlier than the sequential charge.
  cfg.network.mean_upload_mbps = 0.002;
  cfg.upload_chunk_bytes = 256;
  return cfg;
}

TEST(ClosedLoop, ForcesPerEntityStreamsAndPipelinedRuntime) {
  SimulationConfig cfg = small_config();
  cfg.task.closed_loop_clients = true;
  cfg.task.pipelined_clients = false;              // normalized on
  cfg.rng_streams = RngStreamMode::kSharedLegacy;  // normalized to per-entity
  FlSimulator simulator(cfg);
  const auto result = simulator.run();
  EXPECT_EQ(result.server_steps, 15u);

  // In closed-loop mode the report *is* the pipelined arrival: the
  // round-trip latency equals the pipelined latency on every completed
  // participation (no separate observational column).
  std::size_t completed = 0;
  for (const auto& p : result.participations) {
    if (p.round_latency_s <= 0.0) continue;
    ++completed;
    // round_latency is measured on the event clock ((join + delay) - join),
    // so it matches the planned pipelined latency only up to float
    // non-associativity.
    EXPECT_NEAR(p.round_latency_s, p.pipelined_latency_s,
                1e-9 * p.round_latency_s);
    EXPECT_GT(p.upload_chunks, 1u);
  }
  EXPECT_GT(completed, 0u);
}

TEST(ClosedLoop, DeterministicFromSeed) {
  SimulationConfig cfg = small_config();
  cfg.task.closed_loop_clients = true;
  cfg.record_utilization = true;
  FlSimulator first(cfg);
  FlSimulator second(cfg);
  const auto a = first.run();
  const auto b = second.run();
  EXPECT_EQ(a.final_model, b.final_model);
  EXPECT_DOUBLE_EQ(a.end_time_s, b.end_time_s);
  EXPECT_EQ(a.loss_curve.times, b.loss_curve.times);
  EXPECT_EQ(a.loss_curve.values, b.loss_curve.values);
  EXPECT_EQ(a.busy_clients.times, b.busy_clients.times);
}

TEST(ClosedLoop, PerEntityOpenLoopDeterministicFromSeed) {
  SimulationConfig cfg = small_config();
  cfg.rng_streams = RngStreamMode::kPerEntity;
  FlSimulator first(cfg);
  FlSimulator second(cfg);
  const auto a = first.run();
  const auto b = second.run();
  EXPECT_EQ(a.final_model, b.final_model);
  EXPECT_DOUBLE_EQ(a.end_time_s, b.end_time_s);
}

TEST(ClosedLoop, ChangesWhenUpdatesArriveNotWhatClientsDraw) {
  // Open loop vs closed loop over the same per-entity streams.  The arrival
  // process changes (overlapped uploads land earlier, so the same number of
  // server steps completes sooner), but every device's draw sequence is
  // keyed to (entity, purpose, index): its k-th participation samples the
  // identical execution time in both runs, no matter how differently the
  // two schedules interleave.
  SimulationConfig cfg = small_config();
  cfg.rng_streams = RngStreamMode::kPerEntity;
  cfg.task.pipelined_clients = true;
  FlSimulator open_loop(cfg);
  cfg.task.closed_loop_clients = true;
  FlSimulator closed_loop(cfg);

  const auto open = open_loop.run();
  const auto closed = closed_loop.run();
  EXPECT_EQ(open.server_steps, closed.server_steps);
  EXPECT_LT(closed.end_time_s, open.end_time_s);

  auto per_client_exec = [](const SimulationResult& r) {
    std::map<std::uint64_t, std::vector<double>> exec;
    for (const auto& p : r.participations) {
      exec[p.client_id].push_back(p.exec_time_s);
    }
    return exec;
  };
  const auto open_exec = per_client_exec(open);
  const auto closed_exec = per_client_exec(closed);
  std::size_t compared = 0;
  for (const auto& [client, open_draws] : open_exec) {
    const auto it = closed_exec.find(client);
    if (it == closed_exec.end()) continue;
    const std::size_t n = std::min(open_draws.size(), it->second.size());
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_DOUBLE_EQ(open_draws[k], it->second[k])
          << "client " << client << " participation " << k;
      ++compared;
    }
  }
  EXPECT_GT(compared, 10u);
}

TEST(ClosedLoop, PipelinedSessionExposesArrivalTimes) {
  // The event API the closed-loop scheduler consumes: per-chunk upload
  // completions, last entry == finish_time, non-decreasing.
  fl::PipelineTimings timings;
  timings.train_s = 10.0;
  timings.serialize_chunk_s = {1.0, 1.0, 1.0};
  timings.upload_chunk_s = {4.0, 4.0, 4.0};
  fl::PipelinedClientSession session(timings);
  const auto arrivals = session.upload_completion_times();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  fl::PipelinedClientSession replay(timings);
  EXPECT_DOUBLE_EQ(arrivals.back(), replay.finish_time());
  // And it does not disturb the session's own cursor.
  EXPECT_FALSE(session.done());
  EXPECT_DOUBLE_EQ(session.now(), 0.0);
}

}  // namespace
}  // namespace papaya::sim
