// The pipelined client runtime (Sec. 6.1 stage overlap):
//   - ChunkSerializer streams chunks the moment their bytes are serialized
//     and its chunk stream is bit-identical to the materialize-then-split
//     path, so pipelining can never change what the server reassembles.
//   - PipelinedClientSession orders the train ∥ serialize ∥ upload stages by
//     the pipeline recurrences and its total latency is bounded by the
//     slowest stage plus residuals, never worse than the stage sum.
//   - VirtualSessionManager upload progress: streamed chunks keep a session
//     alive chunk by chunk.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "fl/chunking.hpp"
#include "fl/client_runtime.hpp"
#include "fl/model_update.hpp"
#include "fl/session.hpp"
#include "util/rng.hpp"

namespace papaya::fl {
namespace {

using Event = PipelinedClientSession::Event;

util::Bytes random_payload(util::Rng& rng, std::size_t size) {
  util::Bytes payload(size);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  return payload;
}

// ---------------------------------------------------------- ChunkSerializer --

TEST(ChunkSerializer, BitIdenticalToChunkUpload) {
  util::Rng rng(41);
  for (const std::size_t size : {0UL, 1UL, 99UL, 100UL, 101UL, 4096UL}) {
    for (const std::size_t chunk_size : {1UL, 7UL, 100UL, 8192UL}) {
      const util::Bytes payload = random_payload(rng, size);
      const auto expected = chunk_upload(9, payload, chunk_size);

      ChunkSerializer serializer(9, payload.size(), chunk_size);
      std::vector<UploadChunk> streamed;
      // Feed in uneven slices to exercise chunk-boundary straddling.
      std::size_t pos = 0;
      while (pos < payload.size()) {
        const std::size_t n =
            std::min(payload.size() - pos, 1 + rng.uniform_int(200));
        serializer.append(std::span<const std::uint8_t>(payload).subspan(pos, n));
        pos += n;
        while (serializer.has_ready()) streamed.push_back(serializer.pop_ready());
      }
      while (serializer.has_ready()) streamed.push_back(serializer.pop_ready());

      EXPECT_TRUE(serializer.finished());
      ASSERT_EQ(streamed.size(), expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        // Wire-level equality: same framing, payload bytes and CRC.
        EXPECT_EQ(streamed[i].serialize(), expected[i].serialize())
            << "size " << size << " chunk_size " << chunk_size << " chunk " << i;
      }
    }
  }
}

TEST(ChunkSerializer, EmitsEachChunkAsSoonAsItsBytesAreComplete) {
  ChunkSerializer serializer(1, 10, 4);  // chunks of 4, 4, 2 bytes
  EXPECT_EQ(serializer.total_chunks(), 3u);
  const util::Bytes bytes(10, 0x5a);
  const std::span<const std::uint8_t> all(bytes);

  serializer.append(all.subspan(0, 3));
  EXPECT_FALSE(serializer.has_ready());  // 3 < 4: chunk 0 incomplete
  serializer.append(all.subspan(3, 1));
  EXPECT_EQ(serializer.chunks_emitted(), 1u);  // byte 4 completes chunk 0
  serializer.append(all.subspan(4, 5));
  EXPECT_EQ(serializer.chunks_emitted(), 2u);  // chunk 1 full, chunk 2 short
  EXPECT_FALSE(serializer.finished());
  serializer.append(all.subspan(9, 1));
  // The final short chunk is emitted the moment the last byte lands.
  EXPECT_EQ(serializer.chunks_emitted(), 3u);
  EXPECT_TRUE(serializer.finished());
}

TEST(ChunkSerializer, EmptyPayloadStillEmitsOneChunk) {
  ChunkSerializer serializer(3, 0, 64);
  EXPECT_TRUE(serializer.finished());
  ASSERT_TRUE(serializer.has_ready());
  const UploadChunk chunk = serializer.pop_ready();
  EXPECT_EQ(chunk.total, 1u);
  EXPECT_TRUE(chunk.payload.empty());
  ChunkAssembler assembler(3);
  EXPECT_EQ(assembler.accept(chunk), ChunkAssembler::Accept::kComplete);
}

TEST(ChunkSerializer, OverflowAndMisuseThrow) {
  ChunkSerializer serializer(1, 4, 4);
  const util::Bytes bytes(5, 0);
  EXPECT_THROW(serializer.append(bytes), std::invalid_argument);
  EXPECT_THROW(ChunkSerializer(1, 10, 0), std::invalid_argument);
  ChunkSerializer empty_done(1, 0, 4);
  (void)empty_done.pop_ready();
  EXPECT_THROW(empty_done.pop_ready(), std::logic_error);
}

TEST(StreamUpdateChunks, MatchesSequentialSerializeAndReassembles) {
  util::Rng rng(77);
  ModelUpdate update;
  update.client_id = 11;
  update.initial_version = 5;
  update.num_examples = 42;
  update.delta.resize(3000);
  for (auto& v : update.delta) v = static_cast<float>(rng.normal());

  const util::Bytes serialized = update.serialize();
  EXPECT_EQ(serialized.size(), serialized_update_bytes(update.delta.size()));

  for (const std::size_t chunk_size : {64UL, 1000UL, 1UL << 20}) {
    const auto expected = chunk_upload(8, serialized, chunk_size);
    std::vector<UploadChunk> streamed;
    ChunkAssembler assembler(8);
    const std::uint64_t total = stream_update_chunks(
        8, update, chunk_size, /*block_floats=*/128, [&](UploadChunk chunk) {
          const auto verdict =
              assembler.accept(UploadChunk::deserialize(chunk.serialize()));
          EXPECT_TRUE(verdict == ChunkAssembler::Accept::kAccepted ||
                      verdict == ChunkAssembler::Accept::kComplete);
          streamed.push_back(std::move(chunk));
        });
    EXPECT_EQ(total, serialized.size());
    ASSERT_EQ(streamed.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(streamed[i].serialize(), expected[i].serialize());
    }
    const auto reassembled = assembler.assemble();
    ASSERT_TRUE(reassembled.has_value());
    EXPECT_EQ(*reassembled, serialized);
    const ModelUpdate back = ModelUpdate::deserialize(*reassembled);
    EXPECT_EQ(back.client_id, update.client_id);
    EXPECT_EQ(back.delta, update.delta);
  }
}

// --------------------------------------------------- PipelinedClientSession --

PipelineTimings uniform_timings(double train, std::size_t chunks,
                                double serialize_each, double upload_each) {
  PipelineTimings t;
  t.train_s = train;
  t.serialize_chunk_s.assign(chunks, serialize_each);
  t.upload_chunk_s.assign(chunks, upload_each);
  return t;
}

/// Reference implementation of the pipeline recurrences, for cross-checking
/// the event-driven machine.
double reference_finish(const PipelineTimings& t) {
  const std::size_t n = t.upload_chunk_s.size();
  double serialize_done = 0.0;
  double upload_done = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double ready =
        t.readiness == PipelineTimings::Readiness::kPostTraining
            ? t.train_s
            : t.train_s * static_cast<double>(i + 1) / static_cast<double>(n);
    serialize_done =
        std::max(ready, serialize_done) + t.serialize_chunk_s[i];
    upload_done = std::max(serialize_done, upload_done) + t.upload_chunk_s[i];
  }
  return upload_done;
}

TEST(PipelinedClientSession, EventOrderInvariants) {
  util::Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t chunks = 1 + rng.uniform_int(12);
    PipelineTimings t;
    t.train_s = rng.uniform(0.0, 20.0);
    for (std::size_t i = 0; i < chunks; ++i) {
      t.serialize_chunk_s.push_back(rng.uniform(0.0, 2.0));
      t.upload_chunk_s.push_back(rng.uniform(0.0, 5.0));
    }
    if (trial % 2 == 1) {
      t.readiness = PipelineTimings::Readiness::kPostTraining;
    }

    PipelinedClientSession session(t);
    double last_at = 0.0;
    std::size_t serialized = 0, uploaded = 0;
    bool trained = false;
    while (!session.done()) {
      const Event event = session.advance();
      EXPECT_GE(event.at, last_at);  // the virtual clock never rewinds
      last_at = event.at;
      switch (event.kind) {
        case Event::Kind::kTrainingComplete:
          EXPECT_FALSE(trained);
          EXPECT_DOUBLE_EQ(event.at, t.train_s);
          trained = true;
          break;
        case Event::Kind::kChunkSerialized:
          EXPECT_EQ(event.chunk, serialized);  // FIFO chunk order
          ++serialized;
          break;
        case Event::Kind::kChunkUploaded:
          EXPECT_EQ(event.chunk, uploaded);
          ++uploaded;
          EXPECT_LE(uploaded, serialized);  // never upload before serialized
          break;
      }
    }
    EXPECT_TRUE(trained);
    EXPECT_EQ(serialized, chunks);
    EXPECT_EQ(uploaded, chunks);
    EXPECT_DOUBLE_EQ(session.now(), reference_finish(t));
    // Overlap can only help, and the machine never beats the physical
    // floor: every stage's own total.
    const double sequential = PipelinedClientSession::sequential_latency(t);
    EXPECT_LE(session.now(), sequential + 1e-12);
    double upload_total = 0.0;
    for (const double u : t.upload_chunk_s) upload_total += u;
    EXPECT_GE(session.now(), t.train_s);        // last chunk waits for train
    EXPECT_GE(session.now(), upload_total);     // the uplink is serial
  }
}

TEST(PipelinedClientSession, TrainDominatedLatencyIsTrainPlusResidual) {
  // Train 100 s, 4 chunks at 1 s serialize + 2 s upload.  The last chunk's
  // bytes are final only when training ends, so latency = train + one
  // serialize + one upload — the issue's max(train, ...) + residual shape.
  const PipelineTimings t = uniform_timings(100.0, 4, 1.0, 2.0);
  PipelinedClientSession session(t);
  EXPECT_DOUBLE_EQ(session.finish_time(), 100.0 + 1.0 + 2.0);
  // Sequential would charge the full stage sum.
  EXPECT_DOUBLE_EQ(PipelinedClientSession::sequential_latency(t),
                   100.0 + 4.0 + 8.0);
}

TEST(PipelinedClientSession, UploadDominatedLatencyHidesTraining) {
  // Upload dwarfs training: chunk 0 is ready at train/4 and the uplink
  // stays busy from then on — training and serialization vanish into the
  // first chunk's readiness.
  const PipelineTimings t = uniform_timings(4.0, 4, 0.0, 50.0);
  PipelinedClientSession session(t);
  EXPECT_DOUBLE_EQ(session.finish_time(), 1.0 + 200.0);
  EXPECT_DOUBLE_EQ(PipelinedClientSession::sequential_latency(t), 204.0);
}

TEST(PipelinedClientSession, PostTrainingReadinessOnlyOverlapsUploads) {
  PipelineTimings t = uniform_timings(10.0, 3, 1.0, 5.0);
  t.readiness = PipelineTimings::Readiness::kPostTraining;
  PipelinedClientSession session(t);
  // Serialization starts at 10; chunk i serialized at 10 + (i+1); uploads
  // chain behind: 11+5=16, 21, 26.
  while (!session.done()) {
    const Event event = session.advance();
    if (event.kind == Event::Kind::kChunkSerialized) {
      EXPECT_GE(event.at, t.train_s + 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(session.now(), 26.0);
}

TEST(PipelinedClientSession, SingleChunkHasNoOverlapToExploit) {
  const PipelineTimings t = uniform_timings(10.0, 1, 2.0, 3.0);
  PipelinedClientSession session(t);
  EXPECT_DOUBLE_EQ(session.finish_time(),
                   PipelinedClientSession::sequential_latency(t));
}

TEST(PipelinedClientSession, StageIsTheEarliestIncompleteStage) {
  const PipelineTimings t = uniform_timings(10.0, 2, 1.0, 1.0);
  PipelinedClientSession session(t);
  EXPECT_EQ(session.stage(), PipelinedClientSession::Stage::kTraining);
  // Chunk 0 serializes (t=6) and uploads (t=7) while training runs.
  (void)session.advance();
  (void)session.advance();
  EXPECT_EQ(session.stage(), PipelinedClientSession::Stage::kTraining);
  EXPECT_EQ(session.chunks_uploaded(), 1u);
  while (!session.done()) (void)session.advance();
  EXPECT_EQ(session.stage(), PipelinedClientSession::Stage::kDone);
}

TEST(PipelinedClientSession, InvalidTimingsThrow) {
  PipelineTimings t;  // no chunks
  t.train_s = 1.0;
  EXPECT_THROW(PipelinedClientSession{t}, std::invalid_argument);
  t.serialize_chunk_s = {1.0, 1.0};
  t.upload_chunk_s = {1.0};  // length mismatch
  EXPECT_THROW(PipelinedClientSession{t}, std::invalid_argument);
  t.upload_chunk_s = {1.0, -0.5};
  EXPECT_THROW(PipelinedClientSession{t}, std::invalid_argument);
  t.upload_chunk_s = {1.0, 1.0};
  t.train_s = -1.0;
  EXPECT_THROW(PipelinedClientSession{t}, std::invalid_argument);
  PipelinedClientSession done(uniform_timings(0.0, 1, 0.0, 0.0));
  (void)done.finish_time();
  EXPECT_THROW(done.peek(), std::logic_error);
}

// --------------------------------------------- Session-manager integration --

TEST(SessionUploadProgress, StreamedChunksKeepTheSessionAlive) {
  VirtualSessionManager::Options options;
  options.session_ttl_s = 30.0;
  VirtualSessionManager sessions(options);
  const std::uint64_t token = sessions.open(1, 0.0);

  // A pipelined client training for 100 s streams a chunk every 20 s —
  // each chunk refreshes the TTL, so the session survives end to end.
  double now = 0.0;
  for (int chunk = 0; chunk < 5; ++chunk) {
    now += 20.0;
    EXPECT_EQ(sessions.record_chunk(token, now), SessionOutcome::kOk);
  }
  const auto info = sessions.lookup(token);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->chunks_uploaded, 5u);
  EXPECT_EQ(info->stage, SessionStage::kUploading);
  EXPECT_EQ(sessions.complete(token, now), SessionOutcome::kOk);

  // A silent sequential client with the same 100 s training time expires.
  const std::uint64_t silent = sessions.open(2, 0.0);
  EXPECT_EQ(sessions.record_chunk(silent, 100.0), SessionOutcome::kExpired);
}

TEST(SessionUploadProgress, ChunksNeverRewindOrReviveASession) {
  VirtualSessionManager sessions;
  const std::uint64_t token = sessions.open(1, 0.0);
  ASSERT_EQ(sessions.advance(token, SessionStage::kUploading, 1.0),
            SessionOutcome::kOk);
  EXPECT_EQ(sessions.record_chunk(token, 2.0), SessionOutcome::kOk);
  EXPECT_EQ(sessions.lookup(token)->stage, SessionStage::kUploading);
  ASSERT_EQ(sessions.complete(token, 3.0), SessionOutcome::kOk);
  EXPECT_EQ(sessions.record_chunk(token, 4.0), SessionOutcome::kTerminal);
  EXPECT_EQ(sessions.record_chunk(999, 4.0), SessionOutcome::kUnknownToken);
}

}  // namespace
}  // namespace papaya::fl
