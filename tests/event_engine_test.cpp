// The event-engine acceptance suite for the POD event record (ISSUE 10):
//
//   1. the 32-byte record dispatches through the per-queue dispatcher with
//      kind/entity/payload intact, in the documented total order, on every
//      backend, interleaved freely with pooled closures;
//   2. steady-state scheduling is allocation-free — proven by a global
//      operator new/delete counter, not by inspection — at the queue level
//      (strict zero) and through the simulator's participation hot path
//      (allocations must not scale with events processed);
//   3. the enum-dispatch refactor of FlSimulator preserved trajectories
//      bit-for-bit: the fig9-style async config reproduces fingerprints
//      captured from the pre-refactor closure scheduler, on all three
//      backends.
//
// This file owns the binary-wide operator new/delete replacement, so it
// must stay its own test executable.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "sim/fl_simulator.hpp"

namespace {

std::atomic<std::uint64_t> g_news{0};

}  // namespace

// Counting replacements for the global allocation functions.  Only the
// throwing forms allocate in this codebase; the sized/array deletes forward
// so the replacement set stays consistent.
void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace papaya::sim {
namespace {

std::uint64_t allocations() {
  return g_news.load(std::memory_order_relaxed);
}

// ------------------------------------------------------ dispatch round-trip --

struct Recorded {
  EventKind kind;
  std::uint32_t entity;
  std::uint32_t payload;
  double now;
};

void record_dispatch(void* ctx, EventKind kind, std::uint32_t entity,
                     std::uint32_t payload, double now) {
  static_cast<std::vector<Recorded>*>(ctx)->push_back(
      {kind, entity, payload, now});
}

TEST(EventEngine, EveryKindRoundTripsThroughDispatchOnEveryBackend) {
  for (const auto backend :
       {EventQueueBackend::kHeap, EventQueueBackend::kCalendar,
        EventQueueBackend::kWheel}) {
    EventQueue q(backend);
    std::vector<Recorded> seen;
    q.set_dispatcher(&record_dispatch, &seen);
    // All 255 usable kinds, distinct entities and payloads, ascending times.
    for (unsigned k = 1; k <= 255; ++k) {
      q.schedule_event_at(0.5 * static_cast<double>(k), /*tie_key=*/0,
                          static_cast<EventKind>(k), 1000u + k, 7u * k);
    }
    while (q.step()) {
    }
    ASSERT_EQ(seen.size(), 255u);
    for (unsigned k = 1; k <= 255; ++k) {
      const Recorded& r = seen[k - 1];
      EXPECT_EQ(r.kind, static_cast<EventKind>(k));
      EXPECT_EQ(r.entity, 1000u + k);
      EXPECT_EQ(r.payload, 7u * k);
      EXPECT_DOUBLE_EQ(r.now, 0.5 * static_cast<double>(k));
    }
  }
}

TEST(EventEngine, PodAndClosureEventsInterleaveInArrivalOrder) {
  // The pooled-closure fallback shares the (time, tie_key, seq) order with
  // POD events: at one timestamp, mixed-API events pop in schedule order.
  for (const auto backend :
       {EventQueueBackend::kHeap, EventQueueBackend::kCalendar,
        EventQueueBackend::kWheel}) {
    EventQueue q(backend);
    std::vector<int> order;
    struct Ctx {
      std::vector<int>* order;
    } ctx{&order};
    q.set_dispatcher(
        [](void* c, EventKind, std::uint32_t entity, std::uint32_t,
           double) {
          static_cast<Ctx*>(c)->order->push_back(static_cast<int>(entity));
        },
        &ctx);
    q.schedule_at(1.0, [&order](double) { order.push_back(0); });
    q.schedule_event_at(1.0, 0, EventKind{9}, 1, 0);
    q.schedule_at(1.0, [&order](double) { order.push_back(2); });
    q.schedule_event_at(1.0, 0, EventKind{9}, 3, 0);
    while (q.step()) {
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  }
}

TEST(EventEngine, KindZeroIsReservedAndRejected) {
  EventQueue q;
  EXPECT_THROW(q.schedule_event_at(1.0, 0, EventQueue::kClosureKind, 0, 0),
               std::invalid_argument);
  EXPECT_THROW(q.schedule_event_in(1.0, 0, EventQueue::kClosureKind, 0, 0),
               std::invalid_argument);
  EXPECT_TRUE(q.empty());
}

TEST(EventEngine, PoppingPodEventWithoutDispatcherThrows) {
  EventQueue q;
  q.schedule_event_at(1.0, 0, EventKind{1}, 0, 0);
  EXPECT_THROW(q.step(), std::logic_error);
}

TEST(EventEngine, PastTimePodScheduleThrowsAndEnqueuesNothing) {
  EventQueue q;
  std::vector<Recorded> seen;
  q.set_dispatcher(&record_dispatch, &seen);
  q.schedule_event_at(5.0, 0, EventKind{1}, 0, 0);
  ASSERT_TRUE(q.step());
  EXPECT_THROW(q.schedule_event_at(1.0, 0, EventKind{1}, 0, 0),
               std::invalid_argument);
  EXPECT_THROW(q.schedule_event_in(-1.0, 0, EventKind{1}, 0, 0),
               std::invalid_argument);
  EXPECT_TRUE(q.empty());
}

TEST(EventEngine, RecordIs32Bytes) {
  // The header static_asserts the private record; this pins the public
  // constant the macro bench budgets with.
  EXPECT_EQ(EventQueue::kEventRecordBytes, 32u);
}

// ------------------------------------------------- allocation-free scheduling --

struct ReschedulerCtx {
  EventQueue* q;
  std::uint64_t pops = 0;
};

// Steady-state workload: every pop reschedules the same event kind with a
// constant delay, so the pending set keeps its seeded uniform spacing
// forever and bucket occupancy is exactly periodic — after warm-up every
// backend has seen its maximal bucket shapes and retained the capacity.
// (Varying delays would slowly drift event spacings, creeping per-bucket
// occupancy high-water marks and turning "zero" into "eventually zero".)
void reschedule_dispatch(void* ctx, EventKind kind, std::uint32_t entity,
                         std::uint32_t payload, double) {
  auto* c = static_cast<ReschedulerCtx*>(ctx);
  c->q->schedule_event_in(2.875, entity, kind, entity, payload);
  ++c->pops;
}

TEST(EventEngine, PodSteadyStateSchedulingIsAllocationFree) {
  for (const auto backend :
       {EventQueueBackend::kHeap, EventQueueBackend::kCalendar,
        EventQueueBackend::kWheel}) {
    EventQueue q(backend);
    ReschedulerCtx ctx{&q};
    q.set_dispatcher(&reschedule_dispatch, &ctx);
    constexpr std::uint32_t kPending = 512;
    for (std::uint32_t i = 0; i < kPending; ++i) {
      q.schedule_event_at(0.01 * static_cast<double>(i), i,
                          static_cast<EventKind>(1 + i % 5), i, i);
    }
    // Warm-up: long enough that the wheel's level-1 ring (256 slots x
    // 0.25 s) and the calendar's post-rebuild ring both complete several
    // full revolutions, so every bucket has been stretched to its periodic
    // peak occupancy.
    for (int i = 0; i < 60000; ++i) {
      ASSERT_TRUE(q.step());
    }
    const std::uint64_t before = allocations();
    for (int i = 0; i < 8000; ++i) {
      q.step();
    }
    const std::uint64_t after = allocations();
    EXPECT_EQ(after - before, 0u)
        << "backend " << static_cast<int>(backend)
        << " allocated on the steady-state POD scheduling path";
    EXPECT_EQ(q.pending(), kPending);
  }
}

TEST(EventEngine, ClosurePoolSteadyStateIsAllocationFree) {
  // The EventFn fallback recycles pool slots through the free list; a
  // small closure (within std::function's inline storage) must not touch
  // the allocator once the pool is warm.
  for (const auto backend :
       {EventQueueBackend::kHeap, EventQueueBackend::kCalendar,
        EventQueueBackend::kWheel}) {
    EventQueue q(backend);
    std::uint64_t pops = 0;
    std::function<void(double)> resched = [&](double) {
      ++pops;
      q.schedule_in(2.875, [&](double t) { resched(t); });
    };
    for (int i = 0; i < 64; ++i) {
      q.schedule_at(0.05 * static_cast<double>(i),
                    [&](double t) { resched(t); });
    }
    for (int i = 0; i < 40000; ++i) {
      ASSERT_TRUE(q.step());
    }
    const std::uint64_t before = allocations();
    for (int i = 0; i < 4000; ++i) {
      q.step();
    }
    const std::uint64_t after = allocations();
    EXPECT_EQ(after - before, 0u)
        << "backend " << static_cast<int>(backend)
        << " allocated on the steady-state closure-pool path";
  }
}

// --------------------------------------- simulator participation hot path --

SimulationConfig engine_config(double horizon_s, EventQueueBackend backend) {
  SimulationConfig cfg;
  cfg.task.name = "engine";
  cfg.task.mode = fl::TrainingMode::kAsync;
  cfg.task.concurrency = 16;
  cfg.task.aggregation_goal = 8;
  cfg.population.num_devices = 2000;
  cfg.population.seed = 7;
  cfg.population.synthesis = ProfileSynthesis::kKeyedLazy;
  cfg.corpus.vocab_size = 32;
  cfg.model.vocab_size = 32;
  cfg.model.embed_dim = 4;
  cfg.model.hidden_dim = 8;
  cfg.model.context = 2;
  cfg.trainer.batch_size = 8;
  cfg.trainer.compute_losses = false;
  cfg.eval_set_size = 16;
  cfg.eval_every_steps = 1000000;
  // Nobody is ever eligible: the run is pure check-in/backoff event churn —
  // the exact per-event path a 10M-device population hammers — with no
  // participation-body allocations (snapshots, training) in the way.
  cfg.device_unavailable_prob = 1.0;
  cfg.mean_checkin_interval_s = 15.0;
  // Push the first report tick past the horizon: the server sweep builds
  // per-tick report vectors, which is per-tick work, not per-event work.
  cfg.report_interval_s = 1.0e9;
  cfg.event_queue = backend;
  cfg.rng_streams = RngStreamMode::kPerEntity;
  cfg.record_participations = false;
  cfg.metrics.max_timeseries_points = 32;
  cfg.max_sim_time_s = horizon_s;
  cfg.seed = 7;
  return cfg;
}

struct RunAllocs {
  std::uint64_t allocs;
  std::uint64_t events;
};

RunAllocs run_counting(double horizon_s, EventQueueBackend backend) {
  FlSimulator sim(engine_config(horizon_s, backend));
  const std::uint64_t before = allocations();
  const auto result = sim.run();
  return {allocations() - before, result.events_processed};
}

TEST(EventEngine, SimulatorEventPathAllocationsDoNotScaleWithEvents) {
  // Two identical deployments, one run three times longer.  Construction
  // and end-of-run bookkeeping allocate identically; the only difference is
  // tens of thousands of extra scheduled-and-dispatched events.  With the
  // POD record the per-event path costs zero allocations, so on the heap
  // backend — whose storage (one vector) plateaus at peak pending — the
  // totals must agree to a small constant margin.
  const RunAllocs short_run = run_counting(300.0, EventQueueBackend::kHeap);
  const RunAllocs long_run = run_counting(900.0, EventQueueBackend::kHeap);
  ASSERT_GT(long_run.events, short_run.events + 20000u)
      << "horizon tripling must pump tens of thousands of extra events";
  EXPECT_LE(long_run.allocs, short_run.allocs + 64u)
      << "allocations scaled with events: the per-event hot path allocates "
         "(short run "
      << short_run.allocs << " allocs / " << short_run.events
      << " events; long run " << long_run.allocs << " allocs / "
      << long_run.events << " events)";
}

TEST(EventEngine, CalendarBucketGrowthStaysSublinearInEvents) {
  // The calendar backend does allocate after warm-up — but only when a
  // bucket's occupancy sets a new high-water mark under the Poisson check-in
  // delays, which is amortized storage growth, not per-event work.  Pin the
  // distinction: extra allocations on a 3x horizon stay under 1% of the
  // extra events (measured ~0.65%, decaying over time).
  const RunAllocs short_run =
      run_counting(300.0, EventQueueBackend::kCalendar);
  const RunAllocs long_run = run_counting(900.0, EventQueueBackend::kCalendar);
  ASSERT_GT(long_run.events, short_run.events + 20000u);
  const std::uint64_t extra_allocs = long_run.allocs - short_run.allocs;
  const std::uint64_t extra_events = long_run.events - short_run.events;
  EXPECT_LT(extra_allocs * 100, extra_events)
      << "calendar storage growth is no longer sublinear: " << extra_allocs
      << " extra allocs for " << extra_events << " extra events";
}

// ------------------------------------------------- fig9 golden fingerprints --

std::uint64_t fnv1a_floats(const std::vector<float>& data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  for (std::size_t i = 0; i < data.size() * sizeof(float); ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

SimulationConfig fig9_like_config() {
  SimulationConfig cfg;
  cfg.task.name = "next-word-lm";
  cfg.task.client_timeout_s = 240.0;
  cfg.task.max_staleness = 100;
  cfg.task.mode = fl::TrainingMode::kAsync;
  cfg.task.concurrency = 26;
  cfg.task.aggregation_goal = 13;
  cfg.population.seed = 7;
  cfg.population.num_devices = 600;
  cfg.corpus.vocab_size = 64;
  cfg.model.vocab_size = 64;
  cfg.model.embed_dim = 12;
  cfg.model.hidden_dim = 24;
  cfg.model.context = 2;
  cfg.model_kind = ModelKind::kMlp;
  cfg.trainer.learning_rate = 0.3f;
  cfg.trainer.batch_size = 32;
  cfg.trainer.compute_losses = false;
  cfg.server_opt.lr = 0.05f;
  cfg.eval_set_size = 150;
  cfg.eval_every_steps = 5;
  cfg.seed = 7;
  cfg.target_loss = 3.35;
  cfg.max_sim_time_s = 4.0e5;
  cfg.max_server_steps = 30;
  return cfg;
}

TEST(EventEngine, DispatchTableReproducesPreRefactorFig9Fingerprints) {
  // Golden constants captured from the pre-refactor closure scheduler
  // (identical there on heap and calendar).  The enum dispatch table keeps
  // the exact scheduling call order, so seq assignment — and with it every
  // pop, draw, and model float — must be unchanged, on all three backends.
  for (const auto backend :
       {EventQueueBackend::kHeap, EventQueueBackend::kCalendar,
        EventQueueBackend::kWheel}) {
    SimulationConfig cfg = fig9_like_config();
    cfg.event_queue = backend;
    FlSimulator simulator(cfg);
    const auto r = simulator.run();
    double exec_sum = 0.0;
    for (const auto& p : r.participations) exec_sum += p.exec_time_s;

    EXPECT_DOUBLE_EQ(r.end_time_s, 838.90575585782494);
    EXPECT_EQ(r.server_steps, 30u);
    EXPECT_EQ(r.comm_trips, 393u);
    EXPECT_EQ(r.participations_started, 480u);
    EXPECT_EQ(r.participations.size(), 459u);
    EXPECT_DOUBLE_EQ(r.final_eval_loss, 4.0205441656794321);
    EXPECT_DOUBLE_EQ(exec_sum, 23905.261018029592);
    EXPECT_EQ(fnv1a_floats(r.final_model), 0xeee4aa4f6d00b11cULL);
    EXPECT_EQ(r.events_processed, 32743u);
  }
}

}  // namespace
}  // namespace papaya::sim
