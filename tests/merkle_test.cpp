// Property tests for the verifiable log (App. C.2): inclusion proofs verify
// for every leaf at every tree size, consistency proofs verify between all
// snapshot pairs, and forged proofs are rejected.

#include <gtest/gtest.h>

#include "crypto/merkle.hpp"

namespace papaya::crypto {
namespace {

std::string record(std::uint64_t i) {
  return "trusted-binary-v" + std::to_string(i);
}

TEST(VerifiableLog, EmptyLogRootIsHashOfEmptyString) {
  VerifiableLog log;
  EXPECT_EQ(log.snapshot().tree_size, 0u);
  EXPECT_EQ(log.snapshot().root, Sha256::hash(std::string("")));
}

TEST(VerifiableLog, AppendReturnsSequentialIndices) {
  VerifiableLog log;
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(log.append(record(i)), i);
  EXPECT_EQ(log.size(), 10u);
}

TEST(VerifiableLog, RootChangesOnAppend) {
  VerifiableLog log;
  log.append(record(0));
  const Digest r1 = log.snapshot().root;
  log.append(record(1));
  EXPECT_NE(r1, log.snapshot().root);
}

TEST(VerifiableLog, RootAtRecoversHistoricalRoots) {
  VerifiableLog log;
  std::vector<Digest> roots;
  for (std::uint64_t i = 0; i < 20; ++i) {
    log.append(record(i));
    roots.push_back(log.snapshot().root);
  }
  for (std::uint64_t n = 1; n <= 20; ++n) {
    EXPECT_EQ(log.root_at(n), roots[n - 1]);
  }
}

/// Inclusion proofs must verify for every (leaf, tree size) combination.
class InclusionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InclusionSweep, EveryLeafVerifies) {
  const std::uint64_t n = GetParam();
  VerifiableLog log;
  for (std::uint64_t i = 0; i < n; ++i) log.append(record(i));
  const LogSnapshot snap = log.snapshot();
  for (std::uint64_t i = 0; i < n; ++i) {
    const InclusionProof proof = log.prove_inclusion(i);
    const Digest leaf = VerifiableLog::leaf_hash(
        std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(record(i).data()),
            record(i).size()));
    EXPECT_TRUE(verify_inclusion(leaf, proof, snap))
        << "leaf " << i << " of " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(TreeSizes, InclusionSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16,
                                           17, 31, 32, 33, 64, 100, 127));

TEST(VerifiableLog, WrongLeafHashFailsInclusion) {
  VerifiableLog log;
  for (std::uint64_t i = 0; i < 10; ++i) log.append(record(i));
  const InclusionProof proof = log.prove_inclusion(3);
  const Digest wrong_leaf = VerifiableLog::leaf_hash(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>("evil-binary"), 11));
  EXPECT_FALSE(verify_inclusion(wrong_leaf, proof, log.snapshot()));
}

TEST(VerifiableLog, TamperedInclusionPathFails) {
  VerifiableLog log;
  for (std::uint64_t i = 0; i < 16; ++i) log.append(record(i));
  InclusionProof proof = log.prove_inclusion(5);
  ASSERT_FALSE(proof.path.empty());
  proof.path[0][0] ^= 0x01;
  const Digest leaf = VerifiableLog::leaf_hash(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(record(5).data()),
          record(5).size()));
  EXPECT_FALSE(verify_inclusion(leaf, proof, log.snapshot()));
}

TEST(VerifiableLog, ProofAgainstWrongSnapshotFails) {
  VerifiableLog log;
  for (std::uint64_t i = 0; i < 8; ++i) log.append(record(i));
  const InclusionProof proof = log.prove_inclusion(2);
  const LogSnapshot old_snap = {8, log.root_at(8)};
  log.append(record(8));
  const Digest leaf = VerifiableLog::leaf_hash(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(record(2).data()),
          record(2).size()));
  // Proof for size 8 fails against size-9 snapshot but passes old snapshot.
  EXPECT_FALSE(verify_inclusion(leaf, proof, log.snapshot()));
  EXPECT_TRUE(verify_inclusion(leaf, proof, old_snap));
}

TEST(VerifiableLog, ProveInclusionOutOfRangeThrows) {
  VerifiableLog log;
  log.append(record(0));
  EXPECT_THROW(log.prove_inclusion(1), std::out_of_range);
}

/// Consistency proofs must verify between all (old, new) size pairs.
class ConsistencySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConsistencySweep, AllPrefixPairsVerify) {
  const std::uint64_t n = GetParam();
  VerifiableLog log;
  std::vector<LogSnapshot> snapshots;
  snapshots.push_back(log.snapshot());
  for (std::uint64_t i = 0; i < n; ++i) {
    log.append(record(i));
    snapshots.push_back(log.snapshot());
  }
  for (std::uint64_t old_size = 0; old_size <= n; ++old_size) {
    // Re-derive the proof from the final log (the log grew to n).
    VerifiableLog full;
    for (std::uint64_t i = 0; i < n; ++i) full.append(record(i));
    const ConsistencyProof proof = full.prove_consistency(old_size);
    EXPECT_TRUE(
        verify_consistency(snapshots[old_size], snapshots[n], proof))
        << "old " << old_size << " new " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(TreeSizes, ConsistencySweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 33,
                                           64, 100));

TEST(VerifiableLog, ForkedLogFailsConsistency) {
  // An operator that rewrites history cannot produce a valid consistency
  // proof: build two logs sharing a prefix then diverging.
  VerifiableLog honest, forked;
  for (std::uint64_t i = 0; i < 8; ++i) {
    honest.append(record(i));
    forked.append(record(i));
  }
  const LogSnapshot old_snap = honest.snapshot();
  honest.append(record(8));
  forked.append("malicious-binary");

  const ConsistencyProof honest_proof = honest.prove_consistency(8);
  EXPECT_TRUE(verify_consistency(old_snap, honest.snapshot(), honest_proof));

  const ConsistencyProof forked_proof = forked.prove_consistency(8);
  // The forked log's proof verifies against its own head but the heads
  // differ; and the forked proof must not verify the honest head.
  EXPECT_FALSE(
      verify_consistency(old_snap, honest.snapshot(), forked_proof) &&
      forked.snapshot().root == honest.snapshot().root);
}

TEST(VerifiableLog, RewrittenLeafDetectedByConsistency) {
  VerifiableLog log;
  for (std::uint64_t i = 0; i < 10; ++i) log.append(record(i));
  const LogSnapshot old_snap = log.snapshot();

  // "Append-only" violation: a fresh log with leaf 3 replaced.
  VerifiableLog rewritten;
  for (std::uint64_t i = 0; i < 10; ++i) {
    rewritten.append(i == 3 ? std::string("backdoored") : record(i));
  }
  rewritten.append(record(10));
  const ConsistencyProof proof = rewritten.prove_consistency(10);
  EXPECT_FALSE(verify_consistency(old_snap, rewritten.snapshot(), proof));
}

TEST(VerifiableLog, ConsistencySameSizeRequiresSameRoot) {
  VerifiableLog a, b;
  a.append("x");
  b.append("y");
  const ConsistencyProof proof = a.prove_consistency(1);
  EXPECT_TRUE(verify_consistency(a.snapshot(), a.snapshot(), proof));
  EXPECT_FALSE(verify_consistency(b.snapshot(), a.snapshot(), proof));
}

TEST(VerifiableLog, ConsistencyFromEmptyLogAlwaysHolds) {
  VerifiableLog log;
  const LogSnapshot empty = log.snapshot();
  for (std::uint64_t i = 0; i < 5; ++i) log.append(record(i));
  const ConsistencyProof proof = log.prove_consistency(0);
  EXPECT_TRUE(verify_consistency(empty, log.snapshot(), proof));
}

}  // namespace
}  // namespace papaya::crypto
