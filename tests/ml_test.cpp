// Tests for the ML substrate: kernel correctness, finite-difference gradient
// checks for both model architectures, optimizer behaviour, dataset
// properties, and end-to-end trainability.

#include <gtest/gtest.h>

#include <cmath>

#include "ml/dataset.hpp"
#include "ml/math.hpp"
#include "ml/model.hpp"
#include "ml/optimizer.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace papaya::ml {
namespace {

// ------------------------------------------------------------------ Math --

TEST(Math, MatvecKnownValues) {
  // W = [[1,2],[3,4],[5,6]], x = [1,-1] -> y = [-1,-1,-1].
  const std::vector<float> w{1, 2, 3, 4, 5, 6};
  const std::vector<float> x{1, -1};
  std::vector<float> y(3);
  matvec(w, x, y, 3, 2);
  EXPECT_FLOAT_EQ(y[0], -1.0f);
  EXPECT_FLOAT_EQ(y[1], -1.0f);
  EXPECT_FLOAT_EQ(y[2], -1.0f);
}

TEST(Math, MatvecTransposedIsAdjoint) {
  // Property: <Wx, y> == <x, W^T y> for random inputs.
  util::Rng rng(1);
  const std::size_t rows = 7, cols = 5;
  std::vector<float> w(rows * cols), x(cols), y(rows), wx(rows), wty(cols);
  for (auto& v : w) v = static_cast<float>(rng.normal());
  for (auto& v : x) v = static_cast<float>(rng.normal());
  for (auto& v : y) v = static_cast<float>(rng.normal());
  matvec(w, x, wx, rows, cols);
  matvec_transposed(w, y, wty, rows, cols);
  EXPECT_NEAR(dot(wx, y), dot(x, wty), 1e-4);
}

TEST(Math, SoftmaxSumsToOneAndIsStable) {
  std::vector<float> x{1000.0f, 1000.0f, 999.0f};
  softmax_in_place(x);
  EXPECT_NEAR(x[0] + x[1] + x[2], 1.0f, 1e-6);
  EXPECT_GT(x[0], x[2]);
  EXPECT_FALSE(std::isnan(x[0]));
}

TEST(Math, LogSumExpMatchesNaiveForSmallValues) {
  const std::vector<float> x{0.1f, 0.2f, 0.3f};
  const double naive =
      std::log(std::exp(0.1) + std::exp(0.2) + std::exp(0.3));
  EXPECT_NEAR(log_sum_exp(x), naive, 1e-6);
}

TEST(Math, ClipNormScalesDownOnly) {
  std::vector<float> x{3.0f, 4.0f};  // norm 5
  clip_norm(x, 10.0f);
  EXPECT_FLOAT_EQ(x[0], 3.0f);
  clip_norm(x, 1.0f);
  EXPECT_NEAR(norm(x), 1.0f, 1e-6);
}

// -------------------------------------------------------- Gradient checks --

/// Central-difference gradient check over a random subset of parameters.
void check_gradients(LanguageModel& model, std::span<const Sequence> batch,
                     double tolerance) {
  std::vector<float> grad(model.num_params());
  model.loss(batch, grad);

  util::Rng rng(7);
  const float eps = 1e-3f;
  const std::size_t checks = std::min<std::size_t>(60, model.num_params());
  for (std::size_t c = 0; c < checks; ++c) {
    const std::size_t i = rng.uniform_int(model.num_params());
    const float saved = model.params()[i];
    model.params()[i] = saved + eps;
    const double up = model.loss(batch, {});
    model.params()[i] = saved - eps;
    const double down = model.loss(batch, {});
    model.params()[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(grad[i], numeric,
                tolerance * std::max(1.0, std::fabs(numeric)))
        << "param " << i;
  }
}

std::vector<Sequence> tiny_batch() {
  return {{0, 3, 1, 4, 1, 5}, {2, 7, 1, 0}, {5, 5, 5}};
}

TEST(MlpLm, GradientsMatchFiniteDifferences) {
  LmConfig cfg;
  cfg.vocab_size = 8;
  cfg.embed_dim = 5;
  cfg.hidden_dim = 6;
  cfg.context = 2;
  util::Rng rng(11);
  auto model = make_mlp_lm(cfg, rng);
  const auto batch = tiny_batch();
  check_gradients(*model, batch, 2e-2);
}

TEST(LstmLm, GradientsMatchFiniteDifferences) {
  LmConfig cfg;
  cfg.vocab_size = 8;
  cfg.embed_dim = 4;
  cfg.hidden_dim = 5;
  util::Rng rng(12);
  auto model = make_lstm_lm(cfg, rng);
  const auto batch = tiny_batch();
  check_gradients(*model, batch, 2e-2);
}

TEST(LanguageModel, LossIsLogVocabAtInit) {
  // With near-zero init, predictions are near-uniform: loss ~ log(V).
  LmConfig cfg;
  cfg.vocab_size = 32;
  util::Rng rng(13);
  for (auto factory : {&make_mlp_lm, &make_lstm_lm}) {
    auto model = factory(cfg, rng);
    const auto batch = std::vector<Sequence>{{1, 2, 3, 4, 5, 6, 7, 8}};
    EXPECT_NEAR(model->loss(batch, {}), std::log(32.0), 0.2);
  }
}

TEST(LanguageModel, PerplexityIsExpOfLoss) {
  LmConfig cfg;
  cfg.vocab_size = 16;
  util::Rng rng(14);
  auto model = make_mlp_lm(cfg, rng);
  const auto batch = std::vector<Sequence>{{1, 2, 3, 4}};
  EXPECT_NEAR(model->perplexity(batch), std::exp(model->loss(batch, {})), 1e-6);
}

TEST(LanguageModel, EmptyAndSingletonSequencesContributeNothing) {
  LmConfig cfg;
  cfg.vocab_size = 16;
  util::Rng rng(15);
  auto model = make_mlp_lm(cfg, rng);
  const std::vector<Sequence> batch{{}, {3}};
  EXPECT_DOUBLE_EQ(model->loss(batch, {}), 0.0);
  EXPECT_EQ(LanguageModel::num_predictions(batch), 0u);
}

TEST(LanguageModel, OutOfVocabTokenThrows) {
  LmConfig cfg;
  cfg.vocab_size = 8;
  util::Rng rng(16);
  auto model = make_mlp_lm(cfg, rng);
  const std::vector<Sequence> batch{{1, 99}};
  EXPECT_THROW(model->loss(batch, {}), std::out_of_range);
}

TEST(LanguageModel, CloneIsIndependentDeepCopy) {
  LmConfig cfg;
  cfg.vocab_size = 8;
  util::Rng rng(17);
  auto model = make_lstm_lm(cfg, rng);
  auto copy = model->clone();
  copy->params()[0] += 1.0f;
  EXPECT_NE(model->params()[0], copy->params()[0]);
}

TEST(LanguageModel, TrainingReducesLossOnFixedBatch) {
  // Overfit check for both architectures: SGD on one batch must drive the
  // loss well below the uniform baseline.
  LmConfig cfg;
  cfg.vocab_size = 12;
  cfg.embed_dim = 8;
  cfg.hidden_dim = 16;
  util::Rng rng(18);
  const std::vector<Sequence> batch{{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
                                    {11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0}};
  for (auto factory : {&make_mlp_lm, &make_lstm_lm}) {
    auto model = factory(cfg, rng);
    const double initial = model->loss(batch, {});
    std::vector<float> grad(model->num_params());
    Adam adam(model->num_params(), {.lr = 0.05f});
    for (int step = 0; step < 400; ++step) {
      model->loss(batch, grad);
      adam.step(model->params(), grad);
    }
    const double final_loss = model->loss(batch, {});
    EXPECT_LT(final_loss, initial * 0.5);
  }
}

// -------------------------------------------------------------- Optimizers --

TEST(Sgd, StepMovesAgainstGradient) {
  std::vector<float> params{1.0f, 2.0f};
  std::vector<float> grad{0.5f, -0.5f};
  const Sgd sgd(0.1f);
  sgd.step(params, grad);
  EXPECT_FLOAT_EQ(params[0], 0.95f);
  EXPECT_FLOAT_EQ(params[1], 2.05f);
}

TEST(Adam, FirstStepIsLearningRateSized) {
  // With bias correction, Adam's first step has magnitude ~lr regardless of
  // gradient scale.
  for (float scale : {0.01f, 1.0f, 100.0f}) {
    Adam adam(1, {.lr = 0.1f});
    std::vector<float> params{0.0f};
    const std::vector<float> grad{scale};
    adam.step(params, grad);
    EXPECT_NEAR(params[0], -0.1f, 1e-3) << "scale " << scale;
  }
}

TEST(Adam, ConvergesOnQuadratic) {
  Adam adam(1, {.lr = 0.1f});
  std::vector<float> params{5.0f};
  for (int i = 0; i < 500; ++i) {
    const std::vector<float> grad{2.0f * params[0]};  // d/dx x^2
    adam.step(params, grad);
  }
  EXPECT_NEAR(params[0], 0.0f, 0.05f);
}

TEST(FedAdam, AppliesDeltaInItsDirection) {
  // A positive aggregated delta must move parameters up (FedAdam adds).
  FedAdam opt(2, {.lr = 0.1f});
  std::vector<float> params{0.0f, 0.0f};
  const std::vector<float> delta{1.0f, -1.0f};
  opt.step(params, delta);
  EXPECT_GT(params[0], 0.0f);
  EXPECT_LT(params[1], 0.0f);
}

TEST(FedAdam, SizeMismatchThrows) {
  FedAdam opt(2, {});
  std::vector<float> params{0.0f, 0.0f};
  const std::vector<float> delta{1.0f};
  EXPECT_THROW(opt.step(params, delta), std::invalid_argument);
}

TEST(FedAdam, RepeatedStepsTrackConstantDelta) {
  FedAdam opt(1, {.lr = 0.01f});
  std::vector<float> params{0.0f};
  for (int i = 0; i < 100; ++i) opt.step(params, std::vector<float>{0.5f});
  EXPECT_GT(params[0], 0.5f);  // accumulated movement in delta direction
}

// -------------------------------------------------- ServerOptimizer family --

TEST(ServerOptimizer, FedAdamKindMatchesFedAdamClassExactly) {
  // The unified optimizer must be a drop-in replacement for the original
  // FedAdam: identical trajectories on an identical delta sequence.
  FedAdam reference(3, {.lr = 0.05f, .beta1 = 0.8f});
  ServerOptimizer unified(
      3, {.kind = ServerOptimizerKind::kFedAdam, .lr = 0.05f, .beta1 = 0.8f});
  std::vector<float> p1{0.1f, -0.2f, 0.3f};
  std::vector<float> p2 = p1;
  for (int s = 0; s < 20; ++s) {
    const std::vector<float> delta{0.1f * s, -0.05f, 0.5f - 0.04f * s};
    reference.step(p1, delta);
    unified.step(p2, delta);
  }
  for (std::size_t i = 0; i < p1.size(); ++i) EXPECT_FLOAT_EQ(p1[i], p2[i]);
}

TEST(ServerOptimizer, FedSgdIsExactlyLrTimesDelta) {
  ServerOptimizer opt(2, {.kind = ServerOptimizerKind::kFedSgd, .lr = 0.5f});
  std::vector<float> params{1.0f, 2.0f};
  opt.step(params, std::vector<float>{0.2f, -0.4f});
  EXPECT_FLOAT_EQ(params[0], 1.1f);
  EXPECT_FLOAT_EQ(params[1], 1.8f);
}

TEST(ServerOptimizer, FedAvgMAcceleratesUnderConstantDelta) {
  // Heavy-ball momentum: with a constant delta, each step is larger than
  // the last (until the geometric series saturates).
  ServerOptimizer opt(1, {.kind = ServerOptimizerKind::kFedAvgM,
                          .lr = 0.1f,
                          .beta1 = 0.9f});
  std::vector<float> params{0.0f};
  const std::vector<float> delta{1.0f};
  opt.step(params, delta);
  const float first = params[0];
  opt.step(params, delta);
  const float second = params[0] - first;
  EXPECT_GT(second, first);
}

TEST(ServerOptimizer, FedAdagradStepSizeDecays) {
  // Adagrad's accumulated v makes successive steps under a constant delta
  // strictly smaller.
  ServerOptimizer opt(1, {.kind = ServerOptimizerKind::kFedAdagrad,
                          .lr = 0.1f,
                          .beta1 = 0.0f});
  std::vector<float> params{0.0f};
  const std::vector<float> delta{1.0f};
  float prev = 0.0f;
  float prev_step = std::numeric_limits<float>::infinity();
  for (int s = 0; s < 5; ++s) {
    opt.step(params, delta);
    const float step = params[0] - prev;
    EXPECT_LT(step, prev_step);
    prev = params[0];
    prev_step = step;
  }
}

TEST(ServerOptimizer, FedYogiSecondMomentMovesTowardDeltaSquared) {
  // Yogi's v update v -= (1-b2) d^2 sign(v - d^2) moves v toward d^2 by a
  // bounded amount each step; under a constant delta the step size
  // stabilizes instead of decaying like Adagrad.
  ServerOptimizer yogi(1, {.kind = ServerOptimizerKind::kFedYogi,
                           .lr = 0.1f,
                           .beta1 = 0.0f,
                           .beta2 = 0.9f});
  ServerOptimizer adagrad(1, {.kind = ServerOptimizerKind::kFedAdagrad,
                              .lr = 0.1f,
                              .beta1 = 0.0f});
  std::vector<float> py{0.0f}, pa{0.0f};
  const std::vector<float> delta{1.0f};
  for (int s = 0; s < 50; ++s) {
    yogi.step(py, delta);
    adagrad.step(pa, delta);
  }
  // Yogi's v converges to d^2 = 1 so its per-step movement stays ~lr/(1+tau);
  // Adagrad's v grows to 50 so it has slowed to ~lr/sqrt(50).
  EXPECT_GT(py[0], pa[0]);
}

TEST(ServerOptimizer, SizeMismatchThrows) {
  ServerOptimizer opt(2, {});
  std::vector<float> params{0.0f, 0.0f};
  EXPECT_THROW(opt.step(params, std::vector<float>{1.0f}),
               std::invalid_argument);
}

TEST(ServerOptimizer, StepsTakenCounts) {
  ServerOptimizer opt(1, {.kind = ServerOptimizerKind::kFedSgd});
  std::vector<float> params{0.0f};
  EXPECT_EQ(opt.steps_taken(), 0u);
  opt.step(params, std::vector<float>{1.0f});
  opt.step(params, std::vector<float>{1.0f});
  EXPECT_EQ(opt.steps_taken(), 2u);
}

TEST(ServerOptimizer, ToStringCoversAllKinds) {
  EXPECT_STREQ(to_string(ServerOptimizerKind::kFedSgd), "FedSGD");
  EXPECT_STREQ(to_string(ServerOptimizerKind::kFedAvgM), "FedAvgM");
  EXPECT_STREQ(to_string(ServerOptimizerKind::kFedAdagrad), "FedAdagrad");
  EXPECT_STREQ(to_string(ServerOptimizerKind::kFedAdam), "FedAdam");
  EXPECT_STREQ(to_string(ServerOptimizerKind::kFedYogi), "FedYogi");
}

/// Every member of the family must move parameters in the delta's direction
/// and drive a 1-D quadratic toward its optimum when fed true deltas.
class ServerOptimizerSweep
    : public ::testing::TestWithParam<ServerOptimizerKind> {};

TEST_P(ServerOptimizerSweep, MovesInDeltaDirection) {
  ServerOptimizer opt(2, {.kind = GetParam(), .lr = 0.05f});
  std::vector<float> params{0.0f, 0.0f};
  opt.step(params, std::vector<float>{1.0f, -1.0f});
  EXPECT_GT(params[0], 0.0f);
  EXPECT_LT(params[1], 0.0f);
}

TEST_P(ServerOptimizerSweep, DrivesQuadraticTowardOptimum) {
  // Pseudo-gradient of f(w) = (w - 3)^2 is -(df/dw) = 2 (3 - w): feeding the
  // descent direction as the "aggregated delta" must approach w = 3.
  // Adagrad's 1/sqrt(sum d^2) decay needs a larger lr to cover the same
  // distance in the same number of steps.
  const float lr = GetParam() == ServerOptimizerKind::kFedAdagrad ? 0.2f : 0.02f;
  ServerOptimizer opt(1, {.kind = GetParam(), .lr = lr});
  std::vector<float> w{0.0f};
  for (int s = 0; s < 800; ++s) {
    const std::vector<float> delta{2.0f * (3.0f - w[0])};
    opt.step(w, delta);
  }
  EXPECT_NEAR(w[0], 3.0f, 0.2f);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ServerOptimizerSweep,
                         ::testing::Values(ServerOptimizerKind::kFedSgd,
                                           ServerOptimizerKind::kFedAvgM,
                                           ServerOptimizerKind::kFedAdagrad,
                                           ServerOptimizerKind::kFedAdam,
                                           ServerOptimizerKind::kFedYogi));

// ----------------------------------------------------------------- Dataset --

TEST(FederatedCorpus, DeterministicPerClient) {
  const CorpusConfig cfg;
  FederatedCorpus corpus(cfg, 99);
  const auto a = corpus.client_dataset(7, 20);
  const auto b = corpus.client_dataset(7, 20);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i], b.train[i]);
  }
}

TEST(FederatedCorpus, DifferentClientsDifferentData) {
  const CorpusConfig cfg;
  FederatedCorpus corpus(cfg, 99);
  const auto a = corpus.client_dataset(1, 20);
  const auto b = corpus.client_dataset(2, 20);
  EXPECT_NE(a.train, b.train);
}

TEST(FederatedCorpus, SplitCoversAllExamples) {
  const CorpusConfig cfg;
  FederatedCorpus corpus(cfg, 99);
  const auto d = corpus.client_dataset(3, 100);
  EXPECT_EQ(d.train.size() + d.validation.size() + d.test.size(), 100u);
  EXPECT_GT(d.train.size(), 60u);  // ~80%
  EXPECT_FALSE(d.train.empty());
}

TEST(FederatedCorpus, TokensWithinVocabulary) {
  CorpusConfig cfg;
  cfg.vocab_size = 32;
  FederatedCorpus corpus(cfg, 5);
  const auto d = corpus.client_dataset(0, 50);
  for (const auto& seq : d.train) {
    for (const auto tok : seq) {
      EXPECT_GE(tok, 0);
      EXPECT_LT(tok, 32);
    }
  }
}

TEST(FederatedCorpus, SequenceLengthsWithinConfiguredRange) {
  CorpusConfig cfg;
  cfg.seq_len_min = 5;
  cfg.seq_len_max = 9;
  FederatedCorpus corpus(cfg, 6);
  const auto d = corpus.client_dataset(0, 50);
  for (const auto& seq : d.train) {
    EXPECT_GE(seq.size(), 5u);
    EXPECT_LE(seq.size(), 9u);
  }
}

TEST(FederatedCorpus, CorpusIsLearnable) {
  // The synthetic corpus must have enough structure that training on it
  // beats the uniform baseline on *held-out* data.
  CorpusConfig cfg;
  cfg.vocab_size = 32;
  FederatedCorpus corpus(cfg, 123);
  LmConfig mcfg;
  mcfg.vocab_size = 32;
  mcfg.embed_dim = 12;
  mcfg.hidden_dim = 24;
  mcfg.context = 2;
  util::Rng rng(21);
  auto model = make_mlp_lm(mcfg, rng);

  std::vector<Sequence> train;
  for (std::uint64_t c = 0; c < 8; ++c) {
    auto d = corpus.client_dataset(c, 40);
    train.insert(train.end(), d.train.begin(), d.train.end());
  }
  const auto test = corpus.global_test_set(100);
  const double baseline = model->loss(test, {});

  std::vector<float> grad(model->num_params());
  Adam adam(model->num_params(), {.lr = 0.03f});
  for (int step = 0; step < 200; ++step) {
    model->loss(train, grad);
    adam.step(model->params(), grad);
  }
  const double trained = model->loss(test, {});
  EXPECT_LT(trained, baseline - 0.3);
}

}  // namespace
}  // namespace papaya::ml
