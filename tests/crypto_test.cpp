// Unit tests for the crypto substrate: SHA-256 / HMAC / HKDF known-answer
// tests, ChaCha20 RFC 8439 vectors, big-integer arithmetic properties,
// Diffie-Hellman agreement, and authenticated-encryption tamper detection.

#include <gtest/gtest.h>

#include "crypto/auth_enc.hpp"
#include "crypto/bigint.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/dh.hpp"
#include "crypto/sha256.hpp"
#include "util/rng.hpp"

namespace papaya::crypto {
namespace {

using util::Bytes;
using util::to_hex;

Bytes from_string(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

// ---------------------------------------------------------------- SHA-256 --

TEST(Sha256, Fips180EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash(std::string(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Fips180Abc) {
  EXPECT_EQ(to_hex(Sha256::hash(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, Fips180TwoBlockMessage) {
  EXPECT_EQ(
      to_hex(Sha256::hash(std::string(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.update({reinterpret_cast<const std::uint8_t*>(chunk.data()), chunk.size()});
  }
  Digest d = h.finish();
  EXPECT_EQ(to_hex(d),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const std::string msg = "papaya secure aggregation protocol";
  Sha256 h;
  for (char c : msg) {
    const auto b = static_cast<std::uint8_t>(c);
    h.update({&b, 1});
  }
  EXPECT_EQ(h.finish(), Sha256::hash(msg));
}

TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, from_string("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(from_string("Jefe"),
                               from_string("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(
                key, from_string("Test Using Larger Than Block-Size Key - "
                                 "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HkdfSha256, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
                   0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c};
  const Bytes info{0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9};
  const Bytes okm = hkdf_sha256(ikm, salt, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(HkdfSha256, DifferentInfoDifferentKeys) {
  const Bytes ikm(32, 0x42);
  const Bytes a = hkdf_sha256(ikm, {}, from_string("context-a"), 32);
  const Bytes b = hkdf_sha256(ikm, {}, from_string("context-b"), 32);
  EXPECT_NE(a, b);
}

TEST(HkdfSha256, RejectsOverlongOutput) {
  const Bytes ikm(32, 1);
  EXPECT_THROW(hkdf_sha256(ikm, {}, {}, 255 * 32 + 1), std::invalid_argument);
}

// --------------------------------------------------------------- ChaCha20 --

TEST(ChaCha20, Rfc8439Section231KeystreamBlock) {
  // RFC 8439 2.3.2 test vector: key 00..1f, nonce 000000090000004a00000000,
  // counter 1.
  Bytes key(32);
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  const Bytes nonce{0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                    0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  ChaCha20 cipher(key, nonce, 1);
  const Bytes ks = cipher.keystream(64);
  EXPECT_EQ(to_hex(ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, Rfc8439Section24Encryption) {
  Bytes key(32);
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  const Bytes nonce{0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                    0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.";
  Bytes data = from_string(plaintext);
  ChaCha20 cipher(key, nonce, 1);
  cipher.xor_stream(data);
  EXPECT_EQ(to_hex(Bytes(data.begin(), data.begin() + 16)),
            "6e2e359a2568f98041ba0728dd0d6981");
}

TEST(ChaCha20, EncryptDecryptRoundTrip) {
  const Bytes key(32, 0x11);
  const Bytes nonce(12, 0x22);
  Bytes data = from_string("asynchronous secure aggregation");
  const Bytes original = data;
  ChaCha20 enc(key, nonce);
  enc.xor_stream(data);
  EXPECT_NE(data, original);
  ChaCha20 dec(key, nonce);
  dec.xor_stream(data);
  EXPECT_EQ(data, original);
}

TEST(ChaCha20, RejectsBadKeyOrNonceSize) {
  const Bytes short_key(16, 0);
  const Bytes nonce(12, 0);
  EXPECT_THROW(ChaCha20(short_key, nonce), std::invalid_argument);
  const Bytes key(32, 0);
  const Bytes short_nonce(8, 0);
  EXPECT_THROW(ChaCha20(key, short_nonce), std::invalid_argument);
}

TEST(MaskPrng, DeterministicFromSeed) {
  const Bytes seed{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  MaskPrng a(seed), b(seed);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(MaskPrng, DifferentSeedsDiverge) {
  const Bytes s1(16, 0x01), s2(16, 0x02);
  MaskPrng a(s1), b(s2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += a.next_u32() == b.next_u32();
  EXPECT_LT(same, 5);
}

TEST(ChaCha20, KeystreamWordsMatchesNextU32) {
  // The whole-block word path must be bit-identical to the per-word path,
  // including lengths that are not block multiples and streams that start
  // with a partially consumed block.
  const Bytes key(ChaCha20::kKeySize, 0x3c);
  const Bytes nonce(ChaCha20::kNonceSize, 0x15);
  for (const std::size_t skip : {0UL, 1UL, 7UL, 16UL}) {
    for (const std::size_t n : {0UL, 1UL, 15UL, 16UL, 17UL, 100UL}) {
      ChaCha20 scalar(key, nonce), blocked(key, nonce);
      for (std::size_t i = 0; i < skip; ++i) {
        EXPECT_EQ(scalar.next_u32(), blocked.next_u32());
      }
      std::vector<std::uint32_t> expected(n), actual(n);
      for (auto& w : expected) w = scalar.next_u32();
      blocked.keystream_words(actual);
      EXPECT_EQ(actual, expected) << "skip " << skip << " n " << n;
    }
  }
}

TEST(ChaCha20, MultiStreamMatchesScalarStreams) {
  // The lockstep tile path (8 lanes + scalar remainder) must reproduce each
  // stream's scalar keystream exactly, for stream counts straddling the tile
  // width and lengths straddling block boundaries.
  const Bytes nonce(ChaCha20::kNonceSize, 0x00);
  for (const std::size_t streams : {1UL, 7UL, 8UL, 9UL, 17UL}) {
    for (const std::size_t n : {0UL, 1UL, 15UL, 16UL, 17UL, 100UL}) {
      std::vector<ChaCha20> multi, scalar;
      for (std::size_t s = 0; s < streams; ++s) {
        Bytes key(ChaCha20::kKeySize, static_cast<std::uint8_t>(s + 1));
        multi.emplace_back(key, nonce);
        scalar.emplace_back(key, nonce);
      }
      std::vector<std::vector<std::uint32_t>> out(streams,
                                                  std::vector<std::uint32_t>(n));
      std::vector<ChaCha20*> stream_ptrs(streams);
      std::vector<std::uint32_t*> out_ptrs(streams);
      for (std::size_t s = 0; s < streams; ++s) {
        stream_ptrs[s] = &multi[s];
        out_ptrs[s] = out[s].data();
      }
      ChaCha20::keystream_words_multi(stream_ptrs, out_ptrs, n);
      for (std::size_t s = 0; s < streams; ++s) {
        std::vector<std::uint32_t> expected(n);
        scalar[s].keystream_words(expected);
        EXPECT_EQ(out[s], expected) << "streams " << streams << " n " << n
                                    << " stream " << s;
      }
      // The multi path leaves every stream positioned for more keystream.
      for (std::size_t s = 0; s < streams; ++s) {
        EXPECT_EQ(multi[s].next_u32(), scalar[s].next_u32()) << "stream " << s;
      }
    }
  }
}

// ----------------------------------------------------------------- BigUInt --

TEST(BigUInt, HexRoundTrip) {
  const std::string hex = "deadbeef0123456789abcdef00000000ffffffff";
  EXPECT_EQ(BigUInt::from_hex(hex).to_hex(), hex);
}

TEST(BigUInt, BytesRoundTrip) {
  const Bytes b{0x01, 0x02, 0x03, 0x04, 0x05};
  EXPECT_EQ(BigUInt::from_bytes(b).to_bytes(), b);
}

TEST(BigUInt, ToBytesPadsToWidth) {
  const BigUInt v(0x1234);
  const Bytes b = v.to_bytes(4);
  EXPECT_EQ(to_hex(b), "00001234");
}

TEST(BigUInt, AdditionCarries) {
  const BigUInt a = BigUInt::from_hex("ffffffffffffffff");
  const BigUInt one(1);
  EXPECT_EQ((a + one).to_hex(), "10000000000000000");
}

TEST(BigUInt, SubtractionBorrows) {
  const BigUInt a = BigUInt::from_hex("10000000000000000");
  const BigUInt one(1);
  EXPECT_EQ((a - one).to_hex(), "ffffffffffffffff");
}

TEST(BigUInt, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigUInt(1) - BigUInt(2), std::underflow_error);
}

TEST(BigUInt, MultiplicationKnownProduct) {
  const BigUInt a = BigUInt::from_hex("ffffffffffffffff");
  EXPECT_EQ((a * a).to_hex(), "fffffffffffffffe0000000000000001");
}

TEST(BigUInt, DivmodIdentityProperty) {
  // Property: for random a, b != 0: a == (a/b)*b + (a%b) and a%b < b.
  util::Rng rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    Bytes ab(1 + rng.uniform_int(24)), bb(1 + rng.uniform_int(12));
    for (auto& x : ab) x = static_cast<std::uint8_t>(rng.uniform_int(256));
    for (auto& x : bb) x = static_cast<std::uint8_t>(rng.uniform_int(256));
    const BigUInt a = BigUInt::from_bytes(ab);
    BigUInt b = BigUInt::from_bytes(bb);
    if (b.is_zero()) b = BigUInt(1);
    const auto [q, r] = a.divmod(b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
  }
}

TEST(BigUInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigUInt(5).divmod(BigUInt(0)), std::domain_error);
}

TEST(BigUInt, ShiftsRoundTrip) {
  const BigUInt a = BigUInt::from_hex("123456789abcdef0123456789");
  EXPECT_EQ(((a << 67) >> 67), a);
  EXPECT_EQ((a >> 1000).to_hex(), "0");
}

TEST(BigUInt, PowmodFermatLittleTheorem) {
  // a^(p-1) = 1 mod p for prime p and a not divisible by p.
  const BigUInt p(1000003);  // prime
  for (std::uint64_t a : {2ULL, 3ULL, 999999ULL}) {
    EXPECT_EQ(BigUInt(a).powmod(p - BigUInt(1), p), BigUInt(1));
  }
}

TEST(BigUInt, PowmodMatchesSmallIntegers) {
  // Cross-check against native arithmetic for small values.
  util::Rng rng(100);
  for (int iter = 0; iter < 100; ++iter) {
    const std::uint64_t base = rng.uniform_int(1000);
    const std::uint64_t exp = rng.uniform_int(20);
    const std::uint64_t mod = 1 + rng.uniform_int(10000);
    std::uint64_t expected = 1 % mod;
    for (std::uint64_t i = 0; i < exp; ++i) expected = expected * base % mod;
    EXPECT_EQ(BigUInt(base).powmod(BigUInt(exp), BigUInt(mod)),
              BigUInt(expected));
  }
}

TEST(BigUInt, BitLength) {
  EXPECT_EQ(BigUInt(0).bit_length(), 0u);
  EXPECT_EQ(BigUInt(1).bit_length(), 1u);
  EXPECT_EQ(BigUInt(255).bit_length(), 8u);
  EXPECT_EQ(BigUInt::from_hex("10000000000000000").bit_length(), 65u);
}

// --------------------------------------------------------------------- DH --

TEST(Dh, SharedSecretAgreement) {
  const DhParams& params = DhParams::simulation256();
  const Bytes seed_a(32, 0xaa), seed_b(32, 0xbb);
  DhRandom ra(seed_a), rb(seed_b);
  const DhKeyPair alice = dh_generate(params, ra);
  const DhKeyPair bob = dh_generate(params, rb);
  const BigUInt s1 = dh_shared_element(params, alice.private_key, bob.public_key);
  const BigUInt s2 = dh_shared_element(params, bob.private_key, alice.public_key);
  EXPECT_EQ(s1, s2);
  EXPECT_FALSE(s1.is_zero());
}

TEST(Dh, DistinctPartiesDistinctSecrets) {
  const DhParams& params = DhParams::simulation256();
  const Bytes seed(32, 0x01);
  DhRandom random(seed);
  const DhKeyPair a = dh_generate(params, random);
  const DhKeyPair b = dh_generate(params, random);
  const DhKeyPair c = dh_generate(params, random);
  const BigUInt ab = dh_shared_element(params, a.private_key, b.public_key);
  const BigUInt ac = dh_shared_element(params, a.private_key, c.public_key);
  EXPECT_NE(ab, ac);
}

TEST(Dh, Rfc3526GroupAgreement) {
  const DhParams& params = DhParams::rfc3526_1536();
  const Bytes seed_a(32, 0x10), seed_b(32, 0x20);
  DhRandom ra(seed_a), rb(seed_b);
  const DhKeyPair alice = dh_generate(params, ra);
  const DhKeyPair bob = dh_generate(params, rb);
  EXPECT_EQ(dh_shared_element(params, alice.private_key, bob.public_key),
            dh_shared_element(params, bob.private_key, alice.public_key));
}

TEST(Dh, RejectsDegeneratePublicKeys) {
  const DhParams& params = DhParams::simulation256();
  const Bytes seed(32, 0x33);
  DhRandom random(seed);
  const DhKeyPair kp = dh_generate(params, random);
  EXPECT_THROW(dh_shared_element(params, kp.private_key, BigUInt(0)),
               std::invalid_argument);
  EXPECT_THROW(dh_shared_element(params, kp.private_key, BigUInt(1)),
               std::invalid_argument);
  EXPECT_THROW(dh_shared_element(params, kp.private_key, params.p),
               std::invalid_argument);
}

TEST(Dh, DerivedKeysDependOnLabel) {
  const DhParams& params = DhParams::simulation256();
  const BigUInt shared(123456789);
  const Digest k1 = dh_derive_key(params, shared, "label-one");
  const Digest k2 = dh_derive_key(params, shared, "label-two");
  EXPECT_NE(to_hex(k1), to_hex(k2));
}

// ------------------------------------------------------------- SealedBox --

TEST(AuthEnc, SealOpenRoundTrip) {
  Digest key{};
  key.fill(0x5a);
  const Bytes plaintext = from_string("sixteen byte key");
  const SealedBox box = seal(key, 7, plaintext);
  const auto opened = open(key, 7, box);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plaintext);
}

TEST(AuthEnc, WrongSequenceRejected) {
  Digest key{};
  key.fill(0x5a);
  const SealedBox box = seal(key, 7, from_string("seed"));
  EXPECT_FALSE(open(key, 8, box).has_value());
}

TEST(AuthEnc, WrongKeyRejected) {
  Digest key{}, other{};
  key.fill(0x01);
  other.fill(0x02);
  const SealedBox box = seal(key, 1, from_string("seed"));
  EXPECT_FALSE(open(other, 1, box).has_value());
}

TEST(AuthEnc, TamperedCiphertextRejected) {
  Digest key{};
  key.fill(0x5a);
  SealedBox box = seal(key, 1, from_string("some secret seed"));
  for (std::size_t i = 0; i < box.ciphertext.size(); i += 7) {
    SealedBox tampered = box;
    tampered.ciphertext[i] ^= 0x01;
    EXPECT_FALSE(open(key, 1, tampered).has_value()) << "byte " << i;
  }
}

TEST(AuthEnc, AssociatedDataIsAuthenticated) {
  Digest key{};
  key.fill(0x77);
  const Bytes ad = from_string("params-hash");
  const SealedBox box = seal(key, 1, from_string("seed"), ad);
  EXPECT_TRUE(open(key, 1, box, ad).has_value());
  EXPECT_FALSE(open(key, 1, box, from_string("other")).has_value());
}

TEST(AuthEnc, TruncatedCiphertextRejected) {
  Digest key{};
  key.fill(0x5a);
  SealedBox box = seal(key, 1, from_string("seed"));
  box.ciphertext.resize(10);
  EXPECT_FALSE(open(key, 1, box).has_value());
}

}  // namespace
}  // namespace papaya::crypto
