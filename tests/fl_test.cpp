// Tests for the core FL library: update weighting, the parallel aggregation
// pipeline, Aggregator semantics in both modes (goals, demand, staleness
// aborts, over-selection, timeouts), Coordinator placement / demand pooling /
// failure recovery, Selector staleness, and the client runtime.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>

#include "fl/aggregator.hpp"
#include "fl/chunking.hpp"
#include "fl/client_runtime.hpp"
#include "fl/coordinator.hpp"
#include "fl/model_store.hpp"
#include "fl/model_update.hpp"
#include "fl/parallel_agg.hpp"
#include "fl/secure_buffer.hpp"
#include "fl/selector.hpp"
#include "fl/shard_ring.hpp"
#include "fl/sharded_agg.hpp"
#include "ml/dataset.hpp"
#include "ml/math.hpp"

namespace papaya::fl {
namespace {

// ---------------------------------------------------------- Model updates --

TEST(ModelUpdate, SerializationRoundTrip) {
  ModelUpdate u;
  u.client_id = 42;
  u.initial_version = 7;
  u.num_examples = 13;
  u.delta = {1.0f, -2.5f, 0.0f};
  const ModelUpdate back = ModelUpdate::deserialize(u.serialize());
  EXPECT_EQ(back.client_id, 42u);
  EXPECT_EQ(back.initial_version, 7u);
  EXPECT_EQ(back.num_examples, 13u);
  EXPECT_EQ(back.delta, u.delta);
}

TEST(ModelUpdate, StalenessWeightFollowsPaperFormula) {
  // App. E.2: w = 1 / sqrt(1 + s).
  EXPECT_DOUBLE_EQ(staleness_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(staleness_weight(3), 0.5);
  EXPECT_NEAR(staleness_weight(99), 0.1, 1e-12);
}

TEST(ModelUpdate, WeightMonotonicInExamplesAndStaleness) {
  EXPECT_GT(update_weight(100, 0), update_weight(10, 0));
  EXPECT_GT(update_weight(10, 0), update_weight(10, 5));
}

// ----------------------------------------------------- Parallel aggregator --

util::Bytes make_update(std::uint64_t client, std::size_t size, float value,
                        std::size_t examples = 1) {
  ModelUpdate u;
  u.client_id = client;
  u.num_examples = examples;
  u.delta.assign(size, value);
  return u.serialize();
}

TEST(ParallelAggregator, WeightedMeanAcrossManyUpdates) {
  ParallelAggregator agg(4, /*threads=*/4, /*intermediates=*/4);
  // 10 updates of value i with weight i: mean = sum(i*i)/sum(i).
  double expected_num = 0.0, expected_den = 0.0;
  for (int i = 1; i <= 10; ++i) {
    agg.enqueue(make_update(static_cast<std::uint64_t>(i), 4,
                            static_cast<float>(i)),
                static_cast<double>(i));
    expected_num += static_cast<double>(i) * i;
    expected_den += i;
  }
  const auto reduced = agg.reduce_and_reset();
  EXPECT_EQ(reduced.count, 10u);
  EXPECT_NEAR(reduced.weight_sum, expected_den, 1e-9);
  for (float v : reduced.mean_delta) {
    EXPECT_NEAR(v, expected_num / expected_den, 1e-4);
  }
}

TEST(ParallelAggregator, ResetsBetweenBuffers) {
  ParallelAggregator agg(2, 2, 2);
  agg.enqueue(make_update(1, 2, 1.0f), 1.0);
  (void)agg.reduce_and_reset();
  agg.enqueue(make_update(2, 2, 5.0f), 1.0);
  const auto second = agg.reduce_and_reset();
  EXPECT_EQ(second.count, 1u);
  EXPECT_NEAR(second.mean_delta[0], 5.0f, 1e-6);
}

TEST(ParallelAggregator, MalformedUpdateDropped) {
  ParallelAggregator agg(4, 2, 2);
  agg.enqueue(make_update(1, 2, 1.0f), 1.0);  // wrong size: 2 != 4
  agg.enqueue(make_update(2, 4, 3.0f), 1.0);
  const auto reduced = agg.reduce_and_reset();
  EXPECT_EQ(reduced.count, 1u);
  EXPECT_NEAR(reduced.mean_delta[0], 3.0f, 1e-6);
}

TEST(ParallelAggregator, HighConcurrencyStress) {
  const std::size_t n = 2000;
  ParallelAggregator agg(8, 8, 8);
  for (std::size_t i = 0; i < n; ++i) {
    agg.enqueue(make_update(i, 8, 1.0f), 1.0);
  }
  const auto reduced = agg.reduce_and_reset();
  EXPECT_EQ(reduced.count, n);
  EXPECT_NEAR(reduced.weight_sum, static_cast<double>(n), 1e-6);
  for (float v : reduced.mean_delta) EXPECT_NEAR(v, 1.0f, 1e-4);
}

TEST(ParallelAggregator, WorkerSlotsSpreadEvenly) {
  // Regression: slots were picked by hashing std::thread::id, which gives no
  // collision guarantee (whole pools landed on one intermediate, serializing
  // every fold behind a single mutex).  Index-based slots cover every
  // intermediate exactly evenly.
  std::set<std::size_t> covered;
  for (std::size_t worker = 0; worker < 8; ++worker) {
    const std::size_t slot = ParallelAggregator::intermediate_slot(worker, 4);
    EXPECT_EQ(slot, worker % 4);
    covered.insert(slot);
  }
  EXPECT_EQ(covered.size(), 4u);
}

TEST(ParallelAggregator, EnqueueConcurrentWithReduceConservesUpdates) {
  // Regression for the reduce-vs-enqueue race: reduce_and_reset() used to
  // read/reset intermediates while workers could still fold updates enqueued
  // mid-reduce, silently losing them.  Hammer enqueue against concurrent
  // reduces and assert exact conservation of count / weight / folded mass
  // across all buffers.
  constexpr std::size_t kProducers = 2;
  constexpr std::size_t kPerProducer = 250;
  constexpr std::size_t kModelSize = 8;
  ParallelAggregator agg(kModelSize, /*threads=*/4, /*intermediates=*/4);

  std::atomic<std::size_t> producers_done{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        agg.enqueue(make_update(p * kPerProducer + i, kModelSize, 1.0f), 1.0);
      }
      producers_done.fetch_add(1);
    });
  }

  std::size_t total_count = 0;
  double total_weight = 0.0;
  float folded_mass = 0.0f;  // sum over buffers of (raw weighted sum)[0]
  while (producers_done.load() < kProducers) {
    const auto sums = agg.reduce_and_reset_sums();
    total_count += sums.count;
    total_weight += sums.weight_sum;
    folded_mass += sums.mean_delta[0];
  }
  for (auto& t : producers) t.join();
  const auto last = agg.reduce_and_reset_sums();
  total_count += last.count;
  total_weight += last.weight_sum;
  folded_mass += last.mean_delta[0];

  constexpr auto kTotal = kProducers * kPerProducer;
  EXPECT_EQ(total_count, kTotal);
  EXPECT_DOUBLE_EQ(total_weight, static_cast<double>(kTotal));
  // Unit deltas with unit weights: partial sums are exact in float.
  EXPECT_EQ(folded_mass, static_cast<float>(kTotal));
}

TEST(ParallelAggregator, BatchedDrainConservesUpdatesUnderConcurrentReduce) {
  // Same conservation hammer with drain_batch > 1: a worker popping a run of
  // updates per wakeup must neither lose nor double-fold any of them when
  // reduces quiesce the pool mid-stream.
  constexpr std::size_t kProducers = 2;
  constexpr std::size_t kPerProducer = 250;
  constexpr std::size_t kModelSize = 8;
  ParallelAggregator agg(kModelSize, /*threads=*/4, /*intermediates=*/4,
                         /*clip_norm=*/0.0f, /*drain_batch=*/7);

  std::atomic<std::size_t> producers_done{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        agg.enqueue(make_update(p * kPerProducer + i, kModelSize, 1.0f), 1.0);
      }
      producers_done.fetch_add(1);
    });
  }

  std::size_t total_count = 0;
  while (producers_done.load() < kProducers) {
    total_count += agg.reduce_and_reset_sums().count;
  }
  for (auto& t : producers) t.join();
  total_count += agg.reduce_and_reset_sums().count;
  EXPECT_EQ(total_count, kProducers * kPerProducer);
}

TEST(ParallelAggregator, BatchedDrainMatchesPerUpdateResult) {
  // One worker, FIFO queue: a drained run folds in the same order as
  // per-update draining, so the reduced buffer is bit-identical.
  ParallelAggregator per_update(4, 1, 1);
  ParallelAggregator batched(4, 1, 1, 0.0f, /*drain_batch=*/5);
  for (int i = 1; i <= 13; ++i) {
    const auto update = make_update(static_cast<std::uint64_t>(i), 4,
                                    0.1f * static_cast<float>(i));
    per_update.enqueue(update, 1.0 + i);
    batched.enqueue(update, 1.0 + i);
  }
  const auto a = per_update.reduce_and_reset();
  const auto b = batched.reduce_and_reset();
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.weight_sum, b.weight_sum);
  EXPECT_EQ(a.mean_delta, b.mean_delta);
}

// ------------------------------------------------------ Consistent hashing --

TEST(ConsistentHashRing, DeterministicAndCoversAllShards) {
  const ConsistentHashRing ring(4);
  const ConsistentHashRing same(4);
  std::vector<std::size_t> load(4, 0);
  for (std::uint64_t key = 0; key < 512; ++key) {
    const std::size_t shard = ring.shard_for(key);
    ASSERT_LT(shard, 4u);
    EXPECT_EQ(shard, same.shard_for(key));  // placement is seedless/stable
    ++load[shard];
  }
  // Every shard owns a material share of sequential client-id streams.
  // (Regression: vnode points and stream keys once shared a hash domain,
  // pinning keys 0..63 onto shard 0's own vnode points.)
  for (std::size_t shard = 0; shard < 4; ++shard) {
    EXPECT_GT(load[shard], 512u / 16) << "shard " << shard << " starved";
  }
}

TEST(ConsistentHashRing, ReshardingMovesFewStreams) {
  // The consistency property: growing 4 -> 5 shards must not reshuffle the
  // world.  With vnode rings the expected churn is ~1/5 of streams; assert
  // a loose upper bound (well under a full reshuffle's ~4/5).
  const ConsistentHashRing before(4);
  const ConsistentHashRing after(5);
  constexpr std::uint64_t kStreams = 2000;
  std::uint64_t moved = 0;
  for (std::uint64_t key = 0; key < kStreams; ++key) {
    moved += before.shard_for(key) != after.shard_for(key);
  }
  EXPECT_LT(moved, kStreams / 2);
  EXPECT_GT(moved, 0u);  // the new shard did take over some arcs
}

// ------------------------------------------------------ Sharded aggregator --

ShardedAggregator::Config sharded_config(std::size_t model_size,
                                         std::size_t shards) {
  ShardedAggregator::Config cfg;
  cfg.model_size = model_size;
  cfg.num_shards = shards;
  cfg.threads_per_shard = 2;
  return cfg;
}

TEST(ShardedAggregator, MatchesSingleAggregatorResult) {
  // Cross-shard conservation: the sharded reduce over any shard count must
  // equal the single-pipeline result for the same update set.
  constexpr std::size_t kModelSize = 16;
  ParallelAggregator single(kModelSize, 2, 2);
  ShardedAggregator sharded(sharded_config(kModelSize, 4));
  EXPECT_EQ(sharded.num_shards(), 4u);

  double expected_weight = 0.0;
  for (std::uint64_t client = 1; client <= 40; ++client) {
    const float value = 0.25f * static_cast<float>(client % 7);
    const double weight = 1.0 + static_cast<double>(client % 3);
    single.enqueue(make_update(client, kModelSize, value), weight);
    sharded.enqueue(client, make_update(client, kModelSize, value), weight);
    expected_weight += weight;
  }
  const auto expected = single.reduce_and_reset();
  const auto got = sharded.reduce_and_reset();
  EXPECT_EQ(got.count, expected.count);
  EXPECT_NEAR(got.weight_sum, expected_weight, 1e-9);
  EXPECT_NEAR(got.weight_sum, expected.weight_sum, 1e-9);
  ASSERT_EQ(got.mean_delta.size(), expected.mean_delta.size());
  for (std::size_t i = 0; i < kModelSize; ++i) {
    EXPECT_NEAR(got.mean_delta[i], expected.mean_delta[i], 1e-4);
  }
}

TEST(ShardedAggregator, MalformedUpdatesDroppedPerShard) {
  // Every shard's pipeline drops wrong-sized updates without poisoning the
  // cross-shard reduce; keys are spread so multiple shards see one.
  constexpr std::size_t kModelSize = 4;
  ShardedAggregator sharded(sharded_config(kModelSize, 3));
  std::size_t good = 0;
  for (std::uint64_t client = 0; client < 30; ++client) {
    if (client % 3 == 0) {
      sharded.enqueue(client, make_update(client, kModelSize + 2, 9.0f), 1.0);
    } else {
      sharded.enqueue(client, make_update(client, kModelSize, 2.0f), 1.0);
      ++good;
    }
  }
  const auto reduced = sharded.reduce_and_reset();
  EXPECT_EQ(reduced.count, good);
  EXPECT_NEAR(reduced.weight_sum, static_cast<double>(good), 1e-9);
  for (float v : reduced.mean_delta) EXPECT_NEAR(v, 2.0f, 1e-4);
}

TEST(ShardedAggregator, StreamsStickToTheirShard) {
  const ShardedAggregator sharded(sharded_config(4, 4));
  for (std::uint64_t client = 0; client < 64; ++client) {
    EXPECT_EQ(sharded.shard_for(client), sharded.ring().shard_for(client));
    EXPECT_EQ(sharded.shard_for(client), sharded.shard_for(client));
  }
}

TEST(ShardedAggregator, ResetsBetweenBuffersAcrossShards) {
  ShardedAggregator sharded(sharded_config(2, 2));
  sharded.enqueue(1, make_update(1, 2, 1.0f), 1.0);
  sharded.enqueue(2, make_update(2, 2, 3.0f), 1.0);
  (void)sharded.reduce_and_reset();
  sharded.enqueue(3, make_update(3, 2, 5.0f), 1.0);
  const auto second = sharded.reduce_and_reset();
  EXPECT_EQ(second.count, 1u);
  EXPECT_NEAR(second.mean_delta[0], 5.0f, 1e-6);
}

// -------------------------------------------------------------- Aggregator --

TaskConfig async_task(std::size_t concurrency, std::size_t goal,
                      std::size_t model_size = 4) {
  TaskConfig cfg;
  cfg.name = "lm";
  cfg.mode = TrainingMode::kAsync;
  cfg.concurrency = concurrency;
  cfg.aggregation_goal = goal;
  cfg.model_size = model_size;
  cfg.max_staleness = 10;
  return cfg;
}

TaskConfig sync_task(std::size_t goal, double over_selection,
                     std::size_t model_size = 4) {
  TaskConfig cfg;
  cfg.name = "lm";
  cfg.mode = TrainingMode::kSync;
  cfg.concurrency = TaskConfig::over_selected_cohort(goal, over_selection);
  cfg.aggregation_goal = goal;
  cfg.model_size = model_size;
  return cfg;
}

util::Bytes update_from(std::uint64_t client, std::uint64_t version,
                        std::size_t model_size = 4, float value = 0.1f) {
  ModelUpdate u;
  u.client_id = client;
  u.initial_version = version;
  u.num_examples = 10;
  u.delta.assign(model_size, value);
  return u.serialize();
}

TEST(Aggregator, JoinRespectsConcurrencyLimit) {
  Aggregator agg("a");
  agg.assign_task(async_task(3, 2), std::vector<float>(4, 0.0f), {});
  EXPECT_TRUE(agg.client_join("lm", 1, 0.0).accepted);
  EXPECT_TRUE(agg.client_join("lm", 2, 0.0).accepted);
  EXPECT_TRUE(agg.client_join("lm", 3, 0.0).accepted);
  EXPECT_FALSE(agg.client_join("lm", 4, 0.0).accepted);  // App. E.1
  EXPECT_EQ(agg.client_demand("lm"), 0);
}

TEST(Aggregator, DuplicateJoinRejected) {
  Aggregator agg("a");
  agg.assign_task(async_task(3, 2), std::vector<float>(4, 0.0f), {});
  EXPECT_TRUE(agg.client_join("lm", 1, 0.0).accepted);
  EXPECT_FALSE(agg.client_join("lm", 1, 0.0).accepted);
}

TEST(Aggregator, AsyncGoalTriggersServerStep) {
  Aggregator agg("a");
  agg.assign_task(async_task(10, 3), std::vector<float>(4, 0.0f), {});
  for (std::uint64_t c = 1; c <= 3; ++c) agg.client_join("lm", c, 0.0);
  EXPECT_FALSE(agg.client_report("lm", update_from(1, 0), 1.0).server_stepped);
  EXPECT_FALSE(agg.client_report("lm", update_from(2, 0), 2.0).server_stepped);
  const auto r = agg.client_report("lm", update_from(3, 0), 3.0);
  EXPECT_TRUE(r.server_stepped);
  EXPECT_EQ(agg.model_version("lm"), 1u);
  EXPECT_EQ(agg.stats("lm").server_steps, 1u);
  EXPECT_EQ(agg.stats("lm").updates_applied, 3u);
}

TEST(Aggregator, ShardedTaskMatchesSinglePipelineStep) {
  // The same joins/reports through a 1-shard and a 4-shard task must yield
  // the same server step (cross-shard reduce conserves the weighted mean).
  auto run = [](std::size_t shards) {
    Aggregator agg("a");
    TaskConfig cfg = async_task(10, 4);
    cfg.aggregator_shards = shards;
    agg.assign_task(cfg, std::vector<float>(4, 0.0f), {.lr = 0.1f});
    EXPECT_EQ(agg.task_shards("lm"), shards == 0 ? 1 : shards);
    for (std::uint64_t c = 1; c <= 4; ++c) agg.client_join("lm", c, 0.0);
    ReportResult last;
    for (std::uint64_t c = 1; c <= 4; ++c) {
      last = agg.client_report(
          "lm", update_from(c, 0, 4, 0.1f * static_cast<float>(c)), 1.0);
    }
    EXPECT_TRUE(last.server_stepped);
    EXPECT_EQ(agg.model_version("lm"), 1u);
    return agg.model("lm");
  };
  const auto single = run(1);
  const auto sharded = run(4);
  ASSERT_EQ(single.size(), sharded.size());
  for (std::size_t i = 0; i < single.size(); ++i) {
    EXPECT_NEAR(single[i], sharded[i], 1e-5);
  }
}

TEST(Aggregator, ShardedTaskDropsMalformedPerShard) {
  Aggregator agg("a");
  TaskConfig cfg = async_task(10, 2);
  cfg.aggregator_shards = 3;
  agg.assign_task(cfg, std::vector<float>(4, 0.0f), {});
  for (std::uint64_t c = 1; c <= 3; ++c) agg.client_join("lm", c, 0.0);
  // A wrong-sized update still counts toward the goal (the client reported
  // in time) but must not poison any shard's fold.
  agg.client_report("lm", update_from(1, 0, /*model_size=*/2), 1.0);
  const auto r = agg.client_report("lm", update_from(2, 0, 4, 1.0f), 1.0);
  EXPECT_TRUE(r.server_stepped);
  for (float v : agg.model("lm")) EXPECT_GT(v, 0.0f);
}

TEST(Aggregator, ServerStepMovesModelInDeltaDirection) {
  Aggregator agg("a");
  agg.assign_task(async_task(5, 1), std::vector<float>(4, 0.0f), {.lr = 0.1f});
  agg.client_join("lm", 1, 0.0);
  agg.client_report("lm", update_from(1, 0, 4, 1.0f), 1.0);
  for (float v : agg.model("lm")) EXPECT_GT(v, 0.0f);
}

TEST(Aggregator, AsyncStaleUpdateDiscarded) {
  // The report-time staleness check: a client *in the active set* whose
  // update header claims an initial version older than max_staleness allows
  // (e.g. a client that re-used a stale cached model) must be discarded.
  Aggregator agg("a");
  auto cfg = async_task(20, 1);
  cfg.max_staleness = 2;
  agg.assign_task(cfg, std::vector<float>(4, 0.0f), {});
  // Drive the version to 4 with fresh clients (K = 1).
  for (std::uint64_t c = 1; c <= 4; ++c) {
    agg.client_join("lm", c, 0.0);
    agg.client_report("lm", update_from(c, agg.model_version("lm")), 1.0);
  }
  EXPECT_EQ(agg.model_version("lm"), 4u);
  // Client 10 joins *now* (version 4) but reports an update computed from
  // version 0: staleness 4 > 2.
  agg.client_join("lm", 10, 2.0);
  const auto r = agg.client_report("lm", update_from(10, 0), 5.0);
  EXPECT_EQ(r.outcome, ReportOutcome::kDiscardedStale);
  EXPECT_EQ(agg.model_version("lm"), 4u);
}

TEST(Aggregator, AsyncAbortsOverStaleClientsAfterStep) {
  Aggregator agg("a");
  auto cfg = async_task(20, 1);
  cfg.max_staleness = 3;
  agg.assign_task(cfg, std::vector<float>(4, 0.0f), {});
  agg.client_join("lm", 10, 0.0);  // joins at version 0
  std::vector<std::uint64_t> aborted;
  for (std::uint64_t c = 1; c <= 5; ++c) {
    agg.client_join("lm", c, 0.0);
    const auto r =
        agg.client_report("lm", update_from(c, agg.model_version("lm")), 1.0);
    aborted.insert(aborted.end(), r.aborted_clients.begin(),
                   r.aborted_clients.end());
  }
  // After version exceeds staleness 3, client 10 must have been aborted.
  EXPECT_NE(std::find(aborted.begin(), aborted.end(), 10u), aborted.end());
  // And its eventual report is rejected.
  const auto r = agg.client_report("lm", update_from(10, 0), 6.0);
  EXPECT_EQ(r.outcome, ReportOutcome::kRejectedUnknown);
}

TEST(Aggregator, SyncRoundClosesAtGoalAndAbortsStragglers) {
  Aggregator agg("a");
  agg.assign_task(sync_task(2, 0.5), std::vector<float>(4, 0.0f), {});
  // Cohort of 3 (goal 2, 50% over-selection).
  EXPECT_TRUE(agg.client_join("lm", 1, 0.0).accepted);
  EXPECT_TRUE(agg.client_join("lm", 2, 0.0).accepted);
  EXPECT_TRUE(agg.client_join("lm", 3, 0.0).accepted);

  agg.client_report("lm", update_from(1, 0), 1.0);
  const auto r = agg.client_report("lm", update_from(2, 0), 2.0);
  EXPECT_TRUE(r.server_stepped);
  // The straggler (client 3) is aborted at round close.
  ASSERT_EQ(r.aborted_clients.size(), 1u);
  EXPECT_EQ(r.aborted_clients[0], 3u);
  // Its late report is discarded (over-selection discard).
  const auto late = agg.client_report("lm", update_from(3, 0), 3.0);
  EXPECT_EQ(late.outcome, ReportOutcome::kRejectedUnknown);
  EXPECT_GE(agg.stats("lm").updates_discarded, 1u);
}

TEST(Aggregator, SyncDemandSemantics) {
  // App. E.3: sync demand = cohort - completed - active; a completion does
  // NOT open a slot mid-round, a failure does.
  Aggregator agg("a");
  agg.assign_task(sync_task(4, 0.0), std::vector<float>(4, 0.0f), {});
  EXPECT_EQ(agg.client_demand("lm"), 4);
  for (std::uint64_t c = 1; c <= 4; ++c) agg.client_join("lm", c, 0.0);
  EXPECT_EQ(agg.client_demand("lm"), 0);

  agg.client_report("lm", update_from(1, 0), 1.0);  // completion
  EXPECT_EQ(agg.client_demand("lm"), 0);            // no replacement slot

  agg.client_failed("lm", 2, 1.5);                  // failure
  EXPECT_EQ(agg.client_demand("lm"), 1);            // mid-round replacement
  EXPECT_TRUE(agg.client_join("lm", 5, 2.0).accepted);
}

TEST(Aggregator, AsyncDemandOpensSlotOnCompletionAndFailure) {
  Aggregator agg("a");
  agg.assign_task(async_task(2, 5), std::vector<float>(4, 0.0f), {});
  agg.client_join("lm", 1, 0.0);
  agg.client_join("lm", 2, 0.0);
  EXPECT_EQ(agg.client_demand("lm"), 0);
  agg.client_report("lm", update_from(1, 0), 1.0);
  EXPECT_EQ(agg.client_demand("lm"), 1);  // completion frees the slot
  agg.client_failed("lm", 2, 1.0);
  EXPECT_EQ(agg.client_demand("lm"), 2);
}

TEST(Aggregator, SyncNewRoundStartsAfterStep) {
  Aggregator agg("a");
  agg.assign_task(sync_task(2, 0.0), std::vector<float>(4, 0.0f), {});
  agg.client_join("lm", 1, 0.0);
  agg.client_join("lm", 2, 0.0);
  agg.client_report("lm", update_from(1, 0), 1.0);
  agg.client_report("lm", update_from(2, 0), 2.0);
  EXPECT_EQ(agg.model_version("lm"), 1u);
  // New round: full demand again.
  EXPECT_EQ(agg.client_demand("lm"), 2);
  EXPECT_TRUE(agg.client_join("lm", 3, 3.0).accepted);
}

TEST(Aggregator, TimeoutExpiryFreesSlotAndRejectsLateReport) {
  Aggregator agg("a");
  auto cfg = async_task(1, 5);
  cfg.client_timeout_s = 10.0;
  agg.assign_task(cfg, std::vector<float>(4, 0.0f), {});
  agg.client_join("lm", 1, 0.0);
  const auto expired = agg.expire_timeouts("lm", 11.0);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 1u);
  EXPECT_EQ(agg.client_demand("lm"), 1);
  const auto r = agg.client_report("lm", update_from(1, 0), 12.0);
  EXPECT_EQ(r.outcome, ReportOutcome::kRejectedUnknown);
}

TEST(Aggregator, LateReportPastDeadlineRejected) {
  Aggregator agg("a");
  auto cfg = async_task(1, 5);
  cfg.client_timeout_s = 10.0;
  agg.assign_task(cfg, std::vector<float>(4, 0.0f), {});
  agg.client_join("lm", 1, 0.0);
  const auto r = agg.client_report("lm", update_from(1, 0), 20.0);
  EXPECT_EQ(r.outcome, ReportOutcome::kRejectedTimeout);
}

TEST(Aggregator, StalenessWeightingDownweightsStaleUpdates) {
  // Two aggregations with identical deltas, one fresh and one stale: the
  // weighted mean must tilt toward the fresh update's direction.
  Aggregator agg("a");
  auto cfg = async_task(10, 2, /*model_size=*/1);
  cfg.max_staleness = 100;
  agg.assign_task(cfg, std::vector<float>(1, 0.0f), {.lr = 0.5f});
  // Build a version gap: client A joins now; 1 step happens via B,C.
  agg.client_join("lm", 1, 0.0);  // will become stale
  agg.client_join("lm", 2, 0.0);
  agg.client_join("lm", 3, 0.0);
  agg.client_report("lm", update_from(2, 0, 1, 1.0f), 1.0);
  agg.client_report("lm", update_from(3, 0, 1, 1.0f), 1.0);  // step 1
  const float after_first = agg.model("lm")[0];

  // Now stale client (staleness 1, weight 1/sqrt(2)) reports -1, and a fresh
  // client reports +1 with weight 1: mean > 0.
  agg.client_join("lm", 4, 2.0);
  agg.client_report("lm", update_from(1, 0, 1, -1.0f), 2.0);
  agg.client_report("lm", update_from(4, 1, 1, 1.0f), 2.0);
  EXPECT_GT(agg.model("lm")[0], after_first - 1e-6);
}

TEST(Aggregator, RejectsSyncGoalAboveConcurrency) {
  Aggregator agg("a");
  TaskConfig cfg = sync_task(4, 0.0);
  cfg.concurrency = 3;
  EXPECT_THROW(agg.assign_task(cfg, std::vector<float>(4, 0.0f), {}),
               std::invalid_argument);
}

TEST(Aggregator, UnknownTaskThrows) {
  Aggregator agg("a");
  EXPECT_THROW(agg.model("nope"), std::out_of_range);
  EXPECT_THROW(agg.client_join("nope", 1, 0.0), std::out_of_range);
}

// ------------------------------------------------------------- Coordinator --

TEST(Coordinator, PlacesTaskOnLeastLoadedAggregator) {
  Aggregator a("a"), b("b");
  Coordinator coord;
  coord.register_aggregator(a, 0.0);
  coord.register_aggregator(b, 0.0);

  TaskConfig big = async_task(100, 10, 8);
  big.name = "big";
  coord.submit_task(big, std::vector<float>(8, 0.0f), {});
  TaskConfig small = async_task(1, 1, 8);
  small.name = "small";
  coord.submit_task(small, std::vector<float>(8, 0.0f), {});

  // The second task must land on the other aggregator.
  EXPECT_NE(coord.assignment_map().task_to_aggregator.at("big"),
            coord.assignment_map().task_to_aggregator.at("small"));
}

TEST(Coordinator, AssignsClientsToEligibleTasksOnly) {
  Aggregator a("a");
  Coordinator coord;
  coord.register_aggregator(a, 0.0);
  TaskConfig cfg = async_task(5, 2);
  cfg.required_capability = "gpu";
  coord.submit_task(cfg, std::vector<float>(4, 0.0f), {});

  EXPECT_FALSE(coord.assign_client({{"cpu"}}).has_value());
  const auto assignment = coord.assign_client({{"gpu", "cpu"}});
  ASSERT_TRUE(assignment.has_value());
  EXPECT_EQ(assignment->task, "lm");
}

TEST(Coordinator, PendingAssignmentsReduceDemand) {
  Aggregator a("a");
  Coordinator coord;
  coord.register_aggregator(a, 0.0);
  coord.submit_task(async_task(2, 1), std::vector<float>(4, 0.0f), {});

  EXPECT_TRUE(coord.assign_client({}).has_value());
  EXPECT_TRUE(coord.assign_client({}).has_value());
  // Demand exhausted by pending assignments (Sec. 6.2).
  EXPECT_FALSE(coord.assign_client({}).has_value());
  coord.assignment_concluded("lm");
  EXPECT_TRUE(coord.assign_client({}).has_value());
}

TEST(Coordinator, ReportsRefreshDemandAndResetPending) {
  Aggregator a("a");
  Coordinator coord;
  coord.register_aggregator(a, 0.0);
  coord.submit_task(async_task(3, 1), std::vector<float>(4, 0.0f), {});
  (void)coord.assign_client({});
  (void)coord.assign_client({});
  EXPECT_EQ(coord.pooled_demand("lm"), 1);
  coord.aggregator_report("a", a.next_report_sequence(), 1.0,
                          {{"lm", a.client_demand("lm"), 0}});
  EXPECT_EQ(coord.pooled_demand("lm"), 3);
}

TEST(Coordinator, StaleReportIgnored) {
  Aggregator a("a");
  Coordinator coord;
  coord.register_aggregator(a, 0.0);
  coord.submit_task(async_task(3, 1), std::vector<float>(4, 0.0f), {});
  coord.aggregator_report("a", 5, 1.0, {{"lm", 1, 0}});
  coord.aggregator_report("a", 4, 2.0, {{"lm", 99, 0}});  // stale sequence
  EXPECT_EQ(coord.pooled_demand("lm"), 1);
}

TEST(Coordinator, FailureDetectionReassignsTasks) {
  Aggregator a("a"), b("b");
  Coordinator coord;
  coord.register_aggregator(a, 0.0);
  coord.register_aggregator(b, 0.0);
  coord.submit_task(async_task(5, 2), std::vector<float>(4, 0.5f), {});
  const std::string original =
      coord.assignment_map().task_to_aggregator.at("lm");
  Aggregator& owner = original == "a" ? a : b;
  Aggregator& other = original == "a" ? b : a;

  // Only the other aggregator heartbeats; the owner goes silent.
  const std::uint64_t v0 = coord.assignment_map().version;
  coord.aggregator_report(other.id(), 1, 100.0, {});
  const auto failed = coord.detect_failures(100.0, 30.0);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], owner.id());
  EXPECT_EQ(coord.assignment_map().task_to_aggregator.at("lm"), other.id());
  EXPECT_GT(coord.assignment_map().version, v0);
  EXPECT_TRUE(other.has_task("lm"));
  // Model state survived the move (checkpoint semantics).
  EXPECT_FLOAT_EQ(other.model("lm")[0], 0.5f);
}

TEST(Coordinator, TracksAndNormalizesShardCounts) {
  Aggregator a("a");
  Coordinator coord;
  coord.register_aggregator(a, 0.0);
  TaskConfig sharded = async_task(5, 2);
  sharded.aggregator_shards = 4;
  coord.submit_task(sharded, std::vector<float>(4, 0.0f), {});
  EXPECT_EQ(coord.task_shards("lm"), 4u);
  EXPECT_EQ(a.task_shards("lm"), 4u);

  TaskConfig zero = async_task(5, 2);
  zero.name = "z";
  zero.aggregator_shards = 0;  // normalized to 1 at the placement boundary
  coord.submit_task(zero, std::vector<float>(4, 0.0f), {});
  EXPECT_EQ(coord.task_shards("z"), 1u);
  EXPECT_EQ(a.task_shards("z"), 1u);
  EXPECT_EQ(coord.task_shards("unknown"), 0u);
}

TEST(Coordinator, ShardingDoesNotSkewPlacementLoad) {
  // All of a task's shards run on its one owning Aggregator, so sharding
  // must not change the placement weight (dividing by the shard count would
  // under-report load on exactly the busiest host).
  TaskConfig sharded = async_task(64, 2, /*model_size=*/64);
  sharded.aggregator_shards = 8;
  TaskConfig unsharded = async_task(64, 2, /*model_size=*/64);
  EXPECT_DOUBLE_EQ(sharded.estimated_workload(),
                   unsharded.estimated_workload());

  // Two equally-heavy tasks — one sharded, one not — spread across two
  // Aggregators instead of stacking on the sharded task's host.
  Aggregator a("a"), b("b");
  Coordinator coord;
  coord.register_aggregator(a, 0.0);
  coord.register_aggregator(b, 0.0);
  sharded.name = "sharded";
  coord.submit_task(sharded, std::vector<float>(64, 0.0f), {});
  unsharded.name = "heavy";
  coord.submit_task(unsharded, std::vector<float>(64, 0.0f), {});
  EXPECT_NE(coord.assignment_map().task_to_aggregator.at("heavy"),
            coord.assignment_map().task_to_aggregator.at("sharded"));
}

TEST(Coordinator, RecoveryRebuildsMapFromAggregators) {
  Aggregator a("a");
  Coordinator coord;
  coord.register_aggregator(a, 0.0);
  coord.submit_task(async_task(5, 2), std::vector<float>(4, 0.0f), {});
  const auto before = coord.assignment_map().task_to_aggregator;

  // Simulated coordinator restart: rebuild from aggregator state.
  coord.recover_from_aggregator_state(50.0);
  EXPECT_EQ(coord.assignment_map().task_to_aggregator, before);
}

TEST(Coordinator, NoAggregatorsThrows) {
  Coordinator coord;
  EXPECT_THROW(coord.submit_task(async_task(1, 1), std::vector<float>(4, 0.0f),
                                 {}),
               std::runtime_error);
}

TEST(Coordinator, RemoveTaskStopsAssignment) {
  Aggregator a("a");
  Coordinator coord;
  coord.register_aggregator(a, 0.0);
  coord.submit_task(async_task(5, 2), std::vector<float>(4, 0.0f), {});
  coord.remove_task("lm");
  EXPECT_FALSE(coord.assign_client({}).has_value());
  EXPECT_FALSE(a.has_task("lm"));
}

// ---------------------------------------------------------------- Selector --

TEST(Selector, RoutesAfterRefresh) {
  Aggregator a("a");
  Coordinator coord;
  coord.register_aggregator(a, 0.0);
  coord.submit_task(async_task(5, 2), std::vector<float>(4, 0.0f), {});

  Selector sel("s");
  EXPECT_FALSE(sel.route("lm").has_value());  // never refreshed
  sel.refresh(coord);
  ASSERT_TRUE(sel.route("lm").has_value());
  EXPECT_EQ(*sel.route("lm"), "a");
}

TEST(Selector, DetectsStaleness) {
  Aggregator a("a");
  Coordinator coord;
  coord.register_aggregator(a, 0.0);
  Selector sel("s");
  sel.refresh(coord);
  EXPECT_FALSE(sel.is_stale(coord));
  coord.submit_task(async_task(5, 2), std::vector<float>(4, 0.0f), {});
  EXPECT_TRUE(sel.is_stale(coord));  // map version bumped
  sel.refresh(coord);
  EXPECT_FALSE(sel.is_stale(coord));
}

TEST(Selector, CrashWipesMapAndRefreshRestores) {
  Aggregator a("a");
  Coordinator coord;
  coord.register_aggregator(a, 0.0);
  coord.submit_task(async_task(5, 2), std::vector<float>(4, 0.0f), {});
  Selector sel("s");
  sel.refresh(coord);
  sel.crash();
  EXPECT_FALSE(sel.route("lm").has_value());
  sel.refresh(coord);
  EXPECT_TRUE(sel.route("lm").has_value());
}

// ----------------------------------------------------- Chunked uploads ----

TEST(Chunking, SplitAndReassembleRoundTrip) {
  util::Bytes payload(200'001);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  const auto chunks = chunk_upload(7, payload, 64 * 1024);
  EXPECT_EQ(chunks.size(), 4u);
  ChunkAssembler assembler(7);
  for (const auto& chunk : chunks) {
    const auto verdict = assembler.accept(chunk);
    EXPECT_TRUE(verdict == ChunkAssembler::Accept::kAccepted ||
                verdict == ChunkAssembler::Accept::kComplete);
  }
  const auto out = assembler.assemble();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
}

TEST(Chunking, OutOfOrderAndDuplicateChunks) {
  util::Bytes payload(1000, 0xab);
  auto chunks = chunk_upload(1, payload, 100);
  ChunkAssembler assembler(1);
  // Reverse order + a duplicate.
  for (auto it = chunks.rbegin(); it != chunks.rend(); ++it) {
    assembler.accept(*it);
  }
  EXPECT_EQ(assembler.accept(chunks[3]), ChunkAssembler::Accept::kDuplicate);
  EXPECT_EQ(*assembler.assemble(), payload);
}

TEST(Chunking, CorruptChunkRejected) {
  auto chunks = chunk_upload(1, util::Bytes(500, 0x11), 100);
  chunks[2].payload[5] ^= 0x01;  // CRC now mismatches
  ChunkAssembler assembler(1);
  EXPECT_EQ(assembler.accept(chunks[2]), ChunkAssembler::Accept::kCorrupt);
  EXPECT_FALSE(assembler.complete());
  // Retransmission of the intact chunk succeeds.
  chunks[2].payload[5] ^= 0x01;
  EXPECT_EQ(assembler.accept(chunks[2]), ChunkAssembler::Accept::kAccepted);
}

TEST(Chunking, WrongSessionOrInconsistentTotalsRejected) {
  const util::Bytes payload(300, 0x22);
  const auto chunks = chunk_upload(1, payload, 100);
  ChunkAssembler assembler(2);  // different session
  EXPECT_EQ(assembler.accept(chunks[0]), ChunkAssembler::Accept::kInconsistent);

  ChunkAssembler assembler2(1);
  assembler2.accept(chunks[0]);
  // A tampered total no longer matches the framing-covering CRC: it is
  // indistinguishable from line corruption.
  UploadChunk lying = chunks[1];
  lying.total = 99;
  EXPECT_EQ(assembler2.accept(lying), ChunkAssembler::Accept::kCorrupt);
  // An authentic chunk from a different chunking of the same session (other
  // chunk size, so other total) is well-formed but inconsistent.
  const auto rechunked = chunk_upload(1, payload, 150);
  ASSERT_NE(rechunked[0].total, chunks[0].total);
  EXPECT_EQ(assembler2.accept(rechunked[0]),
            ChunkAssembler::Accept::kInconsistent);
}

TEST(Chunking, EmptyPayloadStillOneChunk) {
  const auto chunks = chunk_upload(1, {}, 100);
  ASSERT_EQ(chunks.size(), 1u);
  ChunkAssembler assembler(1);
  EXPECT_EQ(assembler.accept(chunks[0]), ChunkAssembler::Accept::kComplete);
  EXPECT_EQ(assembler.assemble()->size(), 0u);
}

TEST(Chunking, Crc32KnownAnswer) {
  // CRC-32 of "123456789" is 0xcbf43926 (IEEE 802.3 check value).
  const std::string s = "123456789";
  EXPECT_EQ(crc32({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()}),
            0xcbf43926u);
}

TEST(Chunking, ChunkSerializationRoundTrip) {
  UploadChunk chunk;
  chunk.session_id = 42;
  chunk.index = 3;
  chunk.total = 7;
  chunk.payload = {1, 2, 3};
  chunk.crc = crc32(chunk.payload);
  const UploadChunk back = UploadChunk::deserialize(chunk.serialize());
  EXPECT_EQ(back.session_id, 42u);
  EXPECT_EQ(back.index, 3u);
  EXPECT_EQ(back.total, 7u);
  EXPECT_EQ(back.payload, chunk.payload);
  EXPECT_EQ(back.crc, chunk.crc);
}

// ---------------------------------------------------- Weighting ablations --

TEST(Aggregator, ExampleWeightingOffUsesUniformWeights) {
  // With both weightings off, a heavy client and a light client contribute
  // equally: the mean of +1 (1000 examples) and -1 (1 example) is 0, so the
  // model must not move from the first step's direction asymmetrically.
  for (const bool weighting : {true, false}) {
    Aggregator agg("a");
    auto cfg = async_task(10, 2, 1);
    cfg.example_weighting = weighting;
    cfg.staleness_weighting = false;
    agg.assign_task(cfg, std::vector<float>(1, 0.0f), {.lr = 0.5f});
    agg.client_join("lm", 1, 0.0);
    agg.client_join("lm", 2, 0.0);
    ModelUpdate heavy;
    heavy.client_id = 1;
    heavy.num_examples = 1000;
    heavy.delta = {1.0f};
    ModelUpdate light;
    light.client_id = 2;
    light.num_examples = 1;
    light.delta = {-1.0f};
    agg.client_report("lm", heavy.serialize(), 1.0);
    agg.client_report("lm", light.serialize(), 1.0);
    if (weighting) {
      EXPECT_GT(agg.model("lm")[0], 0.01f);  // heavy client dominates
    } else {
      EXPECT_NEAR(agg.model("lm")[0], 0.0f, 1e-3f);  // exact cancellation
    }
  }
}

// --------------------------------------------------- Differential privacy --

TEST(Aggregator, DpClippingBoundsPerUpdateInfluence) {
  // One malicious client sends a huge delta; with clipping its influence on
  // the model is bounded by clip_norm.
  Aggregator agg("a");
  auto cfg = async_task(10, 1, 2);
  cfg.dp.enabled = true;
  cfg.dp.clip_norm = 0.1f;
  cfg.dp.noise_multiplier = 0.0f;
  agg.assign_task(cfg, std::vector<float>(2, 0.0f), {.lr = 1.0f});
  agg.client_join("lm", 1, 0.0);
  ModelUpdate u;
  u.client_id = 1;
  u.num_examples = 1;
  u.delta = {1e6f, 1e6f};
  agg.client_report("lm", u.serialize(), 1.0);
  // FedAdam normalizes magnitude, but the *pseudo-gradient* fed to it was
  // clipped: verify via a second task without clipping that the buffered
  // mean differs (model trajectories diverge in later steps).  Directly:
  // the clipped mean has norm <= clip_norm; with lr=1 and tau, the step is
  // bounded ~lr.  The key invariant testable here: no NaN/inf and a step
  // of bounded magnitude.
  for (float v : agg.model("lm")) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LT(std::fabs(v), 2.0f);
  }
}

TEST(Aggregator, DpNoisePerturbsDeterministically) {
  // Same task, same updates: with noise_multiplier > 0 the resulting model
  // differs from the noiseless run but is identical across re-runs (seeded
  // by task name).
  auto run = [](float noise) {
    Aggregator agg("a");
    auto cfg = async_task(10, 1, 4);
    cfg.dp.enabled = true;
    cfg.dp.clip_norm = 1.0f;
    cfg.dp.noise_multiplier = noise;
    agg.assign_task(cfg, std::vector<float>(4, 0.0f), {.lr = 0.1f});
    agg.client_join("lm", 1, 0.0);
    agg.client_report("lm", update_from(1, 0, 4, 0.5f), 1.0);
    return agg.model("lm");
  };
  const auto noiseless = run(0.0f);
  const auto noisy_a = run(1.0f);
  const auto noisy_b = run(1.0f);
  EXPECT_NE(noiseless, noisy_a);
  EXPECT_EQ(noisy_a, noisy_b);
}

TEST(ParallelAggregator, ClipNormAppliedPerUpdate) {
  ParallelAggregator agg(2, 1, 1, /*clip_norm=*/1.0f);
  ModelUpdate big;
  big.client_id = 1;
  big.delta = {30.0f, 40.0f};  // norm 50 -> scaled to norm 1
  agg.enqueue(big.serialize(), 1.0);
  const auto reduced = agg.reduce_and_reset();
  EXPECT_NEAR(ml::norm(reduced.mean_delta), 1.0f, 1e-5f);
  EXPECT_NEAR(reduced.mean_delta[0] / reduced.mean_delta[1], 0.75f, 1e-5f);
}

// ------------------------------------------------- Secure buffered FedBuff --

TEST(SecureBuffer, EndToEndSecureServerStep) {
  Aggregator agg("a");
  auto cfg = async_task(10, 2, 4);
  cfg.secagg_enabled = true;
  cfg.example_weighting = false;  // uniform mean for exact expectation
  agg.assign_task(cfg, std::vector<float>(4, 0.0f), {.lr = 0.1f});

  for (std::uint64_t c = 1; c <= 2; ++c) {
    ASSERT_TRUE(agg.client_join("lm", c, 0.0).accepted);
  }
  const std::vector<float> delta{0.5f, -0.5f, 0.25f, 0.0f};
  ReportResult last;
  for (std::uint64_t c = 1; c <= 2; ++c) {
    const auto upload = agg.secure_upload_config("lm");
    ASSERT_TRUE(upload.has_value());
    const auto report = SecureBufferManager::prepare_report(
        agg.secure_platform("lm"), *upload, c, 0, 10,
        agg.secure_update_weight("lm", 10), delta, c);
    ASSERT_TRUE(report.has_value());
    last = agg.client_report_secure("lm", *report, 1.0);
    EXPECT_EQ(last.outcome, ReportOutcome::kAccepted);
  }
  EXPECT_TRUE(last.server_stepped);
  EXPECT_EQ(agg.model_version("lm"), 1u);
  // Model moved in the delta's direction.
  EXPECT_GT(agg.model("lm")[0], 0.0f);
  EXPECT_LT(agg.model("lm")[1], 0.0f);
}

TEST(SecureBuffer, EpochRotatesAfterRelease) {
  SecureBufferManager manager(4, 1, 77);
  const std::uint64_t first_epoch = manager.epoch();
  const auto upload = manager.next_upload_config();
  ASSERT_TRUE(upload.has_value());
  const auto report = SecureBufferManager::prepare_report(
      manager.platform(), *upload, 1, 0, 5, 1.0,
      std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f}, 1);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(manager.submit(*report, 1.0), SecureSubmitOutcome::kAccepted);
  ASSERT_TRUE(manager.finalize_mean().has_value());
  EXPECT_EQ(manager.epoch(), first_epoch + 1);
  // A contribution prepared against the released epoch is rejected.
  EXPECT_EQ(manager.submit(*report, 1.0), SecureSubmitOutcome::kWrongEpoch);
}

TEST(SecureBuffer, WeightedMeanMatchesPlaintext) {
  // Two clients with different weights: secure mean == weighted plaintext
  // mean within fixed-point resolution.
  SecureBufferManager manager(2, 2, 99);
  const std::vector<float> d1{1.0f, 0.0f}, d2{0.0f, 1.0f};
  const double w1 = 3.0, w2 = 1.0;
  for (const auto& [delta, weight, id] :
       {std::tuple{d1, w1, 1ULL}, std::tuple{d2, w2, 2ULL}}) {
    const auto upload = manager.next_upload_config();
    ASSERT_TRUE(upload.has_value());
    const auto report = SecureBufferManager::prepare_report(
        manager.platform(), *upload, id, 0, 5, weight, delta, id);
    ASSERT_TRUE(report.has_value());
    ASSERT_EQ(manager.submit(*report, weight), SecureSubmitOutcome::kAccepted);
  }
  const auto mean = manager.finalize_mean();
  ASSERT_TRUE(mean.has_value());
  EXPECT_NEAR((*mean)[0], 3.0 / 4.0, 1e-3);
  EXPECT_NEAR((*mean)[1], 1.0 / 4.0, 1e-3);
}

TEST(SecureBuffer, TamperedContributionRejectedAndSlotFreed) {
  Aggregator agg("a");
  auto cfg = async_task(5, 2, 4);
  cfg.secagg_enabled = true;
  agg.assign_task(cfg, std::vector<float>(4, 0.0f), {});
  agg.client_join("lm", 1, 0.0);
  const auto upload = agg.secure_upload_config("lm");
  ASSERT_TRUE(upload.has_value());
  auto report = SecureBufferManager::prepare_report(
      agg.secure_platform("lm"), *upload, 1, 0, 10, 1.0,
      std::vector<float>(4, 0.1f), 1);
  ASSERT_TRUE(report.has_value());
  report->contribution.sealed_seed.ciphertext[16] ^= 1;
  const auto result = agg.client_report_secure("lm", *report, 1.0);
  EXPECT_EQ(result.outcome, ReportOutcome::kRejectedUnknown);
  EXPECT_EQ(agg.active_clients("lm"), 0u);  // slot freed for replacement
  EXPECT_GE(agg.client_demand("lm"), 1);
}

TEST(SecureBuffer, BatchedModeMatchesPerUpdateBitForBit) {
  // Two managers with the same seed have identical TSAs and platforms; the
  // same reports through the per-update and the batched pipeline must yield
  // the same accepted set and a bit-identical unmasked mean.
  constexpr std::size_t kModelSize = 6, kGoal = 4;
  SecureBufferManager per_update(kModelSize, kGoal, 1234, /*batch_size=*/1);
  SecureBufferManager batched(kModelSize, kGoal, 1234, /*batch_size=*/3);

  std::optional<std::vector<float>> per_update_mean, batched_mean;
  for (auto* manager : {&per_update, &batched}) {
    const bool is_batched = manager->batch_size() > 1;
    // Five reports: four good, the third tampered (TSA-rejected).
    for (std::uint64_t id = 1; id <= 5; ++id) {
      const auto upload = manager->next_upload_config();
      ASSERT_TRUE(upload.has_value());
      std::vector<float> delta(kModelSize,
                               0.1f * static_cast<float>(id) - 0.3f);
      auto report = SecureBufferManager::prepare_report(
          manager->platform(), *upload, id, 0, 5, /*weight=*/1.0, delta, id);
      ASSERT_TRUE(report.has_value());
      if (id == 3) report->contribution.sealed_seed.ciphertext[4] ^= 1;
      const auto outcome = manager->submit(*report, 1.0);
      if (is_batched) {
        EXPECT_EQ(outcome, SecureSubmitOutcome::kBuffered);
      } else {
        EXPECT_EQ(outcome, id == 3 ? SecureSubmitOutcome::kTsaRejected
                                   : SecureSubmitOutcome::kAccepted);
      }
      if (manager->goal_reached()) break;
    }
    EXPECT_EQ(manager->accepted_count(), kGoal);
    EXPECT_EQ(manager->take_rejected(), is_batched ? 1u : 0u);
    (is_batched ? batched_mean : per_update_mean) = manager->finalize_mean();
  }
  ASSERT_TRUE(per_update_mean.has_value());
  ASSERT_TRUE(batched_mean.has_value());
  EXPECT_EQ(*per_update_mean, *batched_mean);
}

TEST(SecureBuffer, BatchedFlushTriggersAtGoalRegardlessOfBatchSize) {
  // Batch size larger than the goal: the goal-could-complete condition must
  // flush early so the epoch finalizes after the same contributions as
  // per-update mode would.
  constexpr std::size_t kModelSize = 4, kGoal = 2;
  SecureBufferManager manager(kModelSize, kGoal, 55, /*batch_size=*/16);
  for (std::uint64_t id = 1; id <= kGoal; ++id) {
    const auto upload = manager.next_upload_config();
    ASSERT_TRUE(upload.has_value());
    const auto report = SecureBufferManager::prepare_report(
        manager.platform(), *upload, id, 0, 5, 1.0,
        std::vector<float>(kModelSize, 0.5f), id);
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(manager.submit(*report, 1.0), SecureSubmitOutcome::kBuffered);
  }
  EXPECT_EQ(manager.pending_count(), 0u);  // flushed by the goal condition
  EXPECT_TRUE(manager.goal_reached());
  const auto mean = manager.finalize_mean();
  ASSERT_TRUE(mean.has_value());
  for (const float v : *mean) EXPECT_NEAR(v, 0.5f, 1e-3f);
}

TEST(SecureBuffer, BatchedRejectionFreesSyncRoundSlot) {
  // Regression: in batched mode a buffered report is optimistically counted
  // as completing its SyncFL slot; when the flush later rejects it, the
  // completion (and buffered count) must be un-counted so round demand
  // frees up for a replacement — exactly as per-update rejection behaves.
  Aggregator agg("a");
  TaskConfig cfg;
  cfg.name = "lm";
  cfg.mode = TrainingMode::kSync;
  cfg.concurrency = 4;
  cfg.aggregation_goal = 2;
  cfg.model_size = 4;
  cfg.secagg_enabled = true;
  cfg.aggregation_batch_size = 2;
  cfg.example_weighting = false;
  agg.assign_task(cfg, std::vector<float>(4, 0.0f), {});

  for (std::uint64_t c = 1; c <= 2; ++c) {
    ASSERT_TRUE(agg.client_join("lm", c, 0.0).accepted);
  }
  const std::vector<float> delta(4, 0.25f);
  for (std::uint64_t c = 1; c <= 2; ++c) {
    const auto upload = agg.secure_upload_config("lm");
    ASSERT_TRUE(upload.has_value());
    auto report = SecureBufferManager::prepare_report(
        agg.secure_platform("lm"), *upload, c, 0, 10, 1.0, delta, c);
    ASSERT_TRUE(report.has_value());
    if (c == 2) report->contribution.sealed_seed.ciphertext[7] ^= 1;
    agg.client_report_secure("lm", *report, 1.0);
  }
  // The tampered report was flushed and rejected: one completion stands,
  // demand = concurrency - completed - active = 4 - 1 - 0 = 3, and the
  // rejection is visible as a discarded update.
  EXPECT_EQ(agg.stats("lm").updates_discarded, 1u);
  EXPECT_EQ(agg.client_demand("lm"), 3);
  EXPECT_EQ(agg.model_version("lm"), 0u);  // goal not yet reached

  // A replacement client can join, complete, and finish the round.
  ASSERT_TRUE(agg.client_join("lm", 3, 0.0).accepted);
  const auto upload = agg.secure_upload_config("lm");
  ASSERT_TRUE(upload.has_value());
  const auto report = SecureBufferManager::prepare_report(
      agg.secure_platform("lm"), *upload, 3, 0, 10, 1.0, delta, 3);
  ASSERT_TRUE(report.has_value());
  const auto result = agg.client_report_secure("lm", *report, 1.0);
  EXPECT_TRUE(result.server_stepped);
  EXPECT_EQ(agg.model_version("lm"), 1u);
}

TEST(SecureBuffer, BatchedEndToEndThroughAggregator) {
  // The Aggregator path with TaskConfig::aggregation_batch_size > 1: same
  // admission protocol, deferred TSA verdicts, and the server still steps
  // when the goal's worth of verified contributions lands.
  Aggregator agg("a");
  auto cfg = async_task(10, 3, 4);
  cfg.secagg_enabled = true;
  cfg.aggregation_batch_size = 2;
  cfg.example_weighting = false;
  agg.assign_task(cfg, std::vector<float>(4, 0.0f), {.lr = 0.1f});

  for (std::uint64_t c = 1; c <= 3; ++c) {
    ASSERT_TRUE(agg.client_join("lm", c, 0.0).accepted);
  }
  const std::vector<float> delta{0.5f, -0.5f, 0.25f, 0.0f};
  ReportResult last;
  for (std::uint64_t c = 1; c <= 3; ++c) {
    const auto upload = agg.secure_upload_config("lm");
    ASSERT_TRUE(upload.has_value());
    const auto report = SecureBufferManager::prepare_report(
        agg.secure_platform("lm"), *upload, c, 0, 10,
        agg.secure_update_weight("lm", 10), delta, c);
    ASSERT_TRUE(report.has_value());
    last = agg.client_report_secure("lm", *report, 1.0);
    EXPECT_EQ(last.outcome, ReportOutcome::kAccepted);
  }
  EXPECT_TRUE(last.server_stepped);
  EXPECT_EQ(agg.model_version("lm"), 1u);
  EXPECT_GT(agg.model("lm")[0], 0.0f);
  EXPECT_LT(agg.model("lm")[1], 0.0f);
}

// ---------------------------------------------------------- Client runtime --

TEST(Eligibility, RequiresIdleChargingUnmetered) {
  const EligibilityPolicy policy;
  DeviceConditions ok;
  EXPECT_TRUE(policy.eligible(ok, std::nullopt, 0.0));
  for (auto* flag : {&ok.idle, &ok.charging, &ok.unmetered_network}) {
    DeviceConditions bad = ok;
    // Flip one condition off via pointer arithmetic on the copy.
    if (flag == &ok.idle) bad.idle = false;
    if (flag == &ok.charging) bad.charging = false;
    if (flag == &ok.unmetered_network) bad.unmetered_network = false;
    EXPECT_FALSE(policy.eligible(bad, std::nullopt, 0.0));
  }
}

TEST(Eligibility, MinParticipationIntervalEnforced) {
  EligibilityPolicy policy;
  policy.min_participation_interval_s = 100.0;
  const DeviceConditions ok;
  EXPECT_TRUE(policy.eligible(ok, std::nullopt, 0.0));
  EXPECT_FALSE(policy.eligible(ok, 0.0, 50.0));
  EXPECT_TRUE(policy.eligible(ok, 0.0, 150.0));
}

TEST(ExampleStore, RetentionPolicyCapsExamples) {
  ml::CorpusConfig ccfg;
  ml::FederatedCorpus corpus(ccfg, 1);
  ExampleStore store(corpus.client_dataset(0, 100), 10);
  EXPECT_LE(store.num_train_examples(), 10u);
}

TEST(ExampleStore, AgePolicyPurgesOldExamples) {
  RetentionPolicy policy;
  policy.max_age_s = 100.0;
  ExampleStore store(policy);
  store.add_example({1, 2, 3}, 0.0);
  store.add_example({4, 5, 6}, 50.0);
  EXPECT_EQ(store.num_train_examples(), 2u);
  // Ingestion at t=120 sweeps the store: the first example (age 120) is
  // already past the 100 s cap and is purged on the spot.
  store.add_example({7, 8, 9}, 120.0);
  EXPECT_EQ(store.num_train_examples(), 2u);
  EXPECT_EQ(store.dataset().train.front(), (ml::Sequence{4, 5, 6}));
  // At t=130 the survivors are aged 80 and 10 — nothing to purge yet.
  EXPECT_EQ(store.purge(130.0), 0u);
  // Much later everything is expired.
  EXPECT_EQ(store.purge(1000.0), 2u);
  EXPECT_EQ(store.num_train_examples(), 0u);
}

TEST(ExampleStore, CountCapEvictsOldestFirst) {
  RetentionPolicy policy;
  policy.max_examples = 2;
  ExampleStore store(policy);
  store.add_example({1}, 0.0);
  store.add_example({2}, 1.0);
  store.add_example({3}, 2.0);  // evicts {1}
  ASSERT_EQ(store.num_train_examples(), 2u);
  EXPECT_EQ(store.dataset().train[0], (ml::Sequence{2}));
  EXPECT_EQ(store.dataset().train[1], (ml::Sequence{3}));
}

TEST(ExampleStore, UseBudgetRetiresExamples) {
  RetentionPolicy policy;
  policy.max_uses = 2;
  ExampleStore store(policy);
  store.add_example({1, 2}, 0.0);
  store.record_training_use(1.0);
  EXPECT_EQ(store.num_train_examples(), 1u);
  // Second use exhausts the budget; the example is retired.
  store.record_training_use(2.0);
  EXPECT_EQ(store.num_train_examples(), 0u);
}

TEST(ExampleStore, FreshExamplesOutliveUsedOnes) {
  RetentionPolicy policy;
  policy.max_uses = 2;
  ExampleStore store(policy);
  store.add_example({1}, 0.0);
  store.record_training_use(1.0);   // {1} at 1 use
  store.add_example({2}, 2.0);      // fresh
  store.record_training_use(3.0);   // {1} retired at 2 uses; {2} at 1 use
  ASSERT_EQ(store.num_train_examples(), 1u);
  EXPECT_EQ(store.dataset().train.front(), (ml::Sequence{2}));
}

TEST(ExampleStore, UseBudgetBoundaryExactlyExhausted) {
  // An example with max_uses = 3 must survive uses 1 and 2 and retire on
  // exactly the third — off-by-one here silently halves or doubles every
  // client's effective data budget.
  RetentionPolicy policy;
  policy.max_uses = 3;
  ExampleStore store(policy);
  store.add_example({1, 2}, 0.0);
  store.record_training_use(1.0);
  EXPECT_EQ(store.num_train_examples(), 1u);  // 1 use: within budget
  store.record_training_use(2.0);
  EXPECT_EQ(store.num_train_examples(), 1u);  // 2 uses: still within budget
  store.record_training_use(3.0);
  EXPECT_EQ(store.num_train_examples(), 0u);  // 3rd use exhausts it exactly
}

TEST(ExampleStore, AgeBoundaryAtPurgeTimeIsInclusive) {
  // The policy retires examples *older* than max_age_s: an example whose
  // age equals the cap exactly at purge time is still retained (strict >).
  RetentionPolicy policy;
  policy.max_age_s = 100.0;
  ExampleStore store(policy);
  store.add_example({1}, 0.0);
  EXPECT_EQ(store.purge(100.0), 0u);  // age == cap: keep
  EXPECT_EQ(store.num_train_examples(), 1u);
  EXPECT_EQ(store.purge(100.5), 1u);  // age > cap: purge
  EXPECT_EQ(store.num_train_examples(), 0u);
}

TEST(ExampleStore, CountCapEvictsInStrictIngestionOrder) {
  RetentionPolicy policy;
  policy.max_examples = 3;
  ExampleStore store(policy);
  for (std::int32_t i = 0; i < 6; ++i) {
    store.add_example({i}, static_cast<double>(i));
  }
  // Six ingested through a cap of three: the three oldest are gone, the
  // survivors keep ingestion order.
  ASSERT_EQ(store.num_train_examples(), 3u);
  EXPECT_EQ(store.dataset().train[0], (ml::Sequence{3}));
  EXPECT_EQ(store.dataset().train[1], (ml::Sequence{4}));
  EXPECT_EQ(store.dataset().train[2], (ml::Sequence{5}));
}

TEST(Eligibility, ParticipationExactlyAtIntervalBoundary) {
  EligibilityPolicy policy;
  policy.min_participation_interval_s = 100.0;
  const DeviceConditions ok;
  // Exactly at the interval: eligible (the policy is a >= bound).
  EXPECT_TRUE(policy.eligible(ok, 50.0, 150.0));
  // One tick short: still blocked.
  EXPECT_FALSE(policy.eligible(ok, 50.0, 149.999));
  // Zero interval: an immediate repeat participation is allowed.
  EligibilityPolicy zero;
  EXPECT_TRUE(zero.eligible(ok, 10.0, 10.0));
}

TEST(Eligibility, EachConditionFlagIndividuallyBlocksCheckIn) {
  // Through the ClientRuntime check-in path, not just the bare policy:
  // each DeviceConditions flag on its own must block participation.
  const EligibilityPolicy policy;
  ClientRuntime runtime(1, ExampleStore{RetentionPolicy{}});
  ASSERT_TRUE(runtime.check_in_allowed(policy, 0.0));

  runtime.conditions() = {.idle = false, .charging = true,
                          .unmetered_network = true};
  EXPECT_FALSE(runtime.check_in_allowed(policy, 0.0));
  runtime.conditions() = {.idle = true, .charging = false,
                          .unmetered_network = true};
  EXPECT_FALSE(runtime.check_in_allowed(policy, 0.0));
  runtime.conditions() = {.idle = true, .charging = true,
                          .unmetered_network = false};
  EXPECT_FALSE(runtime.check_in_allowed(policy, 0.0));
  runtime.conditions() = {.idle = true, .charging = true,
                          .unmetered_network = true};
  EXPECT_TRUE(runtime.check_in_allowed(policy, 0.0));
}

TEST(ExampleStore, BulkLoadStartsWithZeroUses) {
  ml::CorpusConfig ccfg;
  ml::FederatedCorpus corpus(ccfg, 4);
  ExampleStore store(corpus.client_dataset(0, 20), 1000);
  const std::size_t n = store.num_train_examples();
  ASSERT_GT(n, 0u);
  // Default policy has no use cap; uses accumulate harmlessly.
  store.record_training_use(1.0);
  EXPECT_EQ(store.num_train_examples(), n);
}

// ----------------------------------------------------------- Model store ----

TEST(ModelStore, UnconstrainedStoreIsNearlyInstant) {
  ModelStore store({});
  EXPECT_DOUBLE_EQ(store.publish(1, 20'000'000, 5.0), 5.0);
  EXPECT_EQ(store.visible_version(5.0), 1u);
}

TEST(ModelStore, WriteTimeFollowsBandwidthAndLatency) {
  ModelStore store({10.0 * 1e6, 0.5});  // 10 MB/s + 500 ms commit
  const double visible_at = store.publish(1, 20'000'000, 0.0);
  EXPECT_DOUBLE_EQ(visible_at, 2.5);  // 2 s transfer + 0.5 s commit
  EXPECT_EQ(store.visible_version(2.0), 0u);
  EXPECT_EQ(store.visible_version(2.5), 1u);
}

TEST(ModelStore, WritesSerializeAndStallIsAccounted) {
  ModelStore store({10.0 * 1e6, 0.0});  // 1 s per 10 MB write
  EXPECT_DOUBLE_EQ(store.publish(1, 10'000'000, 0.0), 1.0);
  // Requested at 0.2 but the store is busy until 1.0: 0.8 s stall.
  EXPECT_DOUBLE_EQ(store.publish(2, 10'000'000, 0.2), 2.0);
  EXPECT_DOUBLE_EQ(store.stats().stall_s, 0.8);
  EXPECT_EQ(store.stats().writes, 2u);
  EXPECT_EQ(store.stats().bytes_written, 20'000'000u);
  // Visibility follows completion times, not request times.
  EXPECT_EQ(store.visible_version(0.9), 0u);
  EXPECT_EQ(store.visible_version(1.5), 1u);
  EXPECT_EQ(store.visible_version(2.0), 2u);
}

TEST(ModelStore, IdleStoreDoesNotStall) {
  ModelStore store({10.0 * 1e6, 0.0});
  (void)store.publish(1, 10'000'000, 0.0);
  (void)store.publish(2, 10'000'000, 10.0);  // long after the first finished
  EXPECT_DOUBLE_EQ(store.stats().stall_s, 0.0);
}

TEST(ModelStore, VersionsMustIncrease) {
  ModelStore store({});
  (void)store.publish(2, 100, 0.0);
  EXPECT_THROW(store.publish(2, 100, 1.0), std::invalid_argument);
  EXPECT_THROW(store.publish(1, 100, 1.0), std::invalid_argument);
}

TEST(ModelStore, MinPublishIntervalIsTheSec73Ceiling) {
  ModelStore store({20.0 * 1e6, 0.05});
  EXPECT_DOUBLE_EQ(store.min_publish_interval_s(20'000'000), 1.05);
}

TEST(ModelStore, InvalidConfigRejected) {
  EXPECT_THROW(ModelStore({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(ModelStore({-1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(ModelStore({1.0, -0.1}), std::invalid_argument);
}

// ------------------------------------------------- Staleness schemes --------

TEST(StalenessScheme, AllSchemesAreOneAtZeroStaleness) {
  for (const auto scheme :
       {StalenessScheme::kInverseSqrt, StalenessScheme::kConstant,
        StalenessScheme::kInversePoly, StalenessScheme::kHinge}) {
    EXPECT_DOUBLE_EQ(staleness_weight(scheme, 0), 1.0) << to_string(scheme);
  }
}

TEST(StalenessScheme, InverseSqrtMatchesLegacyFunction) {
  for (const std::uint64_t s : {0ULL, 1ULL, 3ULL, 10ULL, 99ULL}) {
    EXPECT_DOUBLE_EQ(staleness_weight(StalenessScheme::kInverseSqrt, s),
                     staleness_weight(s));
  }
}

TEST(StalenessScheme, ConstantIgnoresStaleness) {
  EXPECT_DOUBLE_EQ(staleness_weight(StalenessScheme::kConstant, 1000000), 1.0);
}

TEST(StalenessScheme, InversePolyExponentControlsDecay) {
  StalenessParams half{.exponent = 0.5};
  StalenessParams one{.exponent = 1.0};
  // a = 0.5 coincides with inverse-sqrt; a = 1 decays faster.
  EXPECT_DOUBLE_EQ(staleness_weight(StalenessScheme::kInversePoly, 3, half),
                   0.5);
  EXPECT_DOUBLE_EQ(staleness_weight(StalenessScheme::kInversePoly, 3, one),
                   0.25);
  EXPECT_LT(staleness_weight(StalenessScheme::kInversePoly, 10, one),
            staleness_weight(StalenessScheme::kInversePoly, 10, half));
}

TEST(StalenessScheme, HingeIsFlatUpToCutoff) {
  StalenessParams p{.hinge_cutoff = 10, .hinge_slope = 0.5};
  EXPECT_DOUBLE_EQ(staleness_weight(StalenessScheme::kHinge, 10, p), 1.0);
  EXPECT_DOUBLE_EQ(staleness_weight(StalenessScheme::kHinge, 12, p), 0.5);
  EXPECT_LT(staleness_weight(StalenessScheme::kHinge, 100, p), 0.05);
}

TEST(StalenessScheme, AllSchemesMonotoneNonIncreasing) {
  const StalenessParams p;
  for (const auto scheme :
       {StalenessScheme::kInverseSqrt, StalenessScheme::kConstant,
        StalenessScheme::kInversePoly, StalenessScheme::kHinge}) {
    double prev = 1.0;
    for (std::uint64_t s = 0; s <= 50; ++s) {
      const double w = staleness_weight(scheme, s, p);
      EXPECT_LE(w, prev) << to_string(scheme) << " at s=" << s;
      EXPECT_GT(w, 0.0);
      prev = w;
    }
  }
}

TEST(StalenessScheme, AggregatorHonoursConfiguredScheme) {
  // Two aggregators differing only in scheme: under kConstant a stale
  // update contributes at full weight, so the resulting models differ.
  auto run_with = [](StalenessScheme scheme) {
    Aggregator agg("a");
    TaskConfig cfg;
    cfg.name = "t";
    cfg.mode = TrainingMode::kAsync;
    cfg.concurrency = 8;
    cfg.aggregation_goal = 2;
    cfg.model_size = 1;
    cfg.example_weighting = false;
    cfg.staleness_scheme = scheme;
    agg.assign_task(cfg, std::vector<float>(1, 0.0f),
                    ml::ServerOptimizerConfig{
                        .kind = ml::ServerOptimizerKind::kFedSgd, .lr = 1.0f});
    // Client 1 trains from version 0 but reports late (staleness 1);
    // clients 2 and 3 are fresh and complete the first goal.
    EXPECT_TRUE(agg.client_join("t", 1, 0.0).accepted);
    EXPECT_TRUE(agg.client_join("t", 2, 0.0).accepted);
    EXPECT_TRUE(agg.client_join("t", 3, 0.0).accepted);
    auto mk = [](std::uint64_t id, std::uint64_t version, float d) {
      ModelUpdate u;
      u.client_id = id;
      u.initial_version = version;
      u.num_examples = 4;
      u.delta = {d};
      return u.serialize();
    };
    (void)agg.client_report("t", mk(2, 0, 1.0f), 1.0);
    (void)agg.client_report("t", mk(3, 0, 1.0f), 1.5);  // version -> 1
    EXPECT_TRUE(agg.client_join("t", 4, 2.0).accepted);
    (void)agg.client_report("t", mk(1, 0, 8.0f), 2.5);  // staleness 1
    const auto r = agg.client_report("t", mk(4, 1, 0.0f), 3.0);
    EXPECT_TRUE(r.server_stepped);
    return agg.model("t")[0];
  };
  const float constant = run_with(StalenessScheme::kConstant);
  const float inv_sqrt = run_with(StalenessScheme::kInverseSqrt);
  // Constant weighting lets the stale 8.0 delta pull the mean up harder.
  EXPECT_GT(constant, inv_sqrt);
}

TEST(Executor, ProducesDeltaThatReducesLocalLoss) {
  ml::LmConfig mcfg;
  mcfg.vocab_size = 16;
  mcfg.embed_dim = 8;
  mcfg.hidden_dim = 12;
  mcfg.context = 2;
  util::Rng rng(31);
  auto model = ml::make_mlp_lm(mcfg, rng);
  const std::vector<float> global(model->params().begin(),
                                  model->params().end());

  ml::CorpusConfig ccfg;
  ccfg.vocab_size = 16;
  ml::FederatedCorpus corpus(ccfg, 2);
  ExampleStore store(corpus.client_dataset(0, 30), 1000);

  TrainerConfig tcfg;
  tcfg.learning_rate = 0.3f;
  tcfg.epochs = 3;
  Executor executor(model->clone(), tcfg);
  util::Rng train_rng(32);
  const LocalTrainingResult result =
      executor.train(global, 7, 99, store, train_rng);

  EXPECT_EQ(result.update.client_id, 99u);
  EXPECT_EQ(result.update.initial_version, 7u);
  EXPECT_EQ(result.update.num_examples, store.num_train_examples());
  EXPECT_EQ(result.update.delta.size(), global.size());
  EXPECT_LT(result.final_loss, result.initial_loss);

  // delta = trained - initial: applying it recovers the trained model.
  auto check = model->clone();
  for (std::size_t i = 0; i < global.size(); ++i) {
    check->params()[i] = global[i] + result.update.delta[i];
  }
  EXPECT_NEAR(check->loss(store.dataset().train, {}), result.final_loss, 1e-5);
}

TEST(Executor, EmptyStoreYieldsZeroDelta) {
  ml::LmConfig mcfg;
  mcfg.vocab_size = 8;
  util::Rng rng(33);
  auto model = ml::make_mlp_lm(mcfg, rng);
  const std::vector<float> global(model->params().begin(),
                                  model->params().end());
  Executor executor(model->clone(), {});
  ExampleStore empty_store;
  util::Rng train_rng(34);
  const auto result = executor.train(global, 0, 1, empty_store, train_rng);
  for (float v : result.update.delta) EXPECT_EQ(v, 0.0f);
}

TEST(Executor, DeterministicGivenSameRngSeed) {
  ml::LmConfig mcfg;
  mcfg.vocab_size = 16;
  util::Rng rng(35);
  auto model = ml::make_mlp_lm(mcfg, rng);
  const std::vector<float> global(model->params().begin(),
                                  model->params().end());
  ml::CorpusConfig ccfg;
  ccfg.vocab_size = 16;
  ml::FederatedCorpus corpus(ccfg, 3);
  ExampleStore store(corpus.client_dataset(0, 20), 1000);
  Executor executor(model->clone(), {});

  util::Rng r1(77), r2(77);
  const auto a = executor.train(global, 0, 1, store, r1);
  const auto b = executor.train(global, 0, 1, store, r2);
  EXPECT_EQ(a.update.delta, b.update.delta);
}

}  // namespace
}  // namespace papaya::fl
