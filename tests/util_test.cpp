// Unit + property tests for src/util: RNG, distributions, statistics,
// serialization.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/bytes.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace papaya::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(8);
  for (std::uint64_t n : {1ULL, 2ULL, 7ULL, 100ULL, 1'000'000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_int(n), n);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(10);
  double sum = 0.0, sumsq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, LognormalSpansOrdersOfMagnitude) {
  // The Fig. 2 requirement: execution times spread over > 2 orders of
  // magnitude between the 1st and 99th percentile with sigma ~ 1.1.
  Rng rng(11);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.lognormal(1.0, 1.1);
  const double p1 = percentile(xs, 1.0);
  const double p99 = percentile(xs, 99.0);
  EXPECT_GT(p99 / p1, 100.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.1);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.1, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(14);
  Rng child = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == child.next();
  EXPECT_LT(same, 3);
}

TEST(ZipfSampler, RanksAreDescendingInFrequency) {
  Rng rng(15);
  ZipfSampler zipf(50, 1.2);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[5], counts[30]);
}

TEST(ZipfSampler, RejectsEmptyDomain) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 10.0);
}

TEST(Stats, PercentileOfEmptyThrows) {
  EXPECT_THROW(percentile(std::vector<double>{}, 50.0), std::invalid_argument);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg(ys.rbegin(), ys.rend());
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonIndependentNearZero) {
  Rng rng(16);
  std::vector<double> xs(5000), ys(5000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.normal();
    ys[i] = rng.normal();
  }
  EXPECT_NEAR(pearson(xs, ys), 0.0, 0.05);
}

TEST(Stats, KsIdenticalSamples) {
  Rng rng(17);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = rng.normal();
  const KsResult r = ks_two_sample(xs, xs);
  EXPECT_DOUBLE_EQ(r.d_statistic, 0.0);
  EXPECT_GT(r.p_value, 0.99);
}

TEST(Stats, KsSameDistributionHighPValue) {
  Rng rng(18);
  std::vector<double> a(3000), b(3000);
  for (auto& x : a) x = rng.normal();
  for (auto& x : b) x = rng.normal();
  const KsResult r = ks_two_sample(a, b);
  EXPECT_LT(r.d_statistic, 0.05);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(Stats, KsShiftedDistributionRejected) {
  // This is the Sec. 7.4 usage: a biased participating-client distribution
  // must produce a large D and a ~zero p-value.
  Rng rng(19);
  std::vector<double> a(3000), b(3000);
  for (auto& x : a) x = rng.normal();
  for (auto& x : b) x = rng.normal() + 1.0;
  const KsResult r = ks_two_sample(a, b);
  EXPECT_GT(r.d_statistic, 0.3);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(Stats, KsEmptySampleThrows) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(ks_two_sample(xs, {}), std::invalid_argument);
}

TEST(Stats, HistogramCountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamped into first bin
  h.add(100.0);   // clamped into last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Stats, HistogramNormalizedSumsToOne) {
  Histogram h(0.0, 1.0, 4);
  Rng rng(20);
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform());
  const auto norm = h.normalized();
  double sum = 0.0;
  for (double v : norm) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Stats, LogHistogramBinCentersAreGeometric) {
  LogHistogram h(1.0, 1000.0, 3);
  EXPECT_NEAR(h.bin_center(0), std::pow(10.0, 0.5), 1e-9);
  EXPECT_NEAR(h.bin_center(1), std::pow(10.0, 1.5), 1e-9);
  EXPECT_NEAR(h.bin_center(2), std::pow(10.0, 2.5), 1e-9);
}

TEST(Stats, RunningStatTracksMinMaxMean) {
  RunningStat s;
  for (double x : {3.0, 1.0, 2.0}) s.add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(Stats, P2QuantileIsExactForFewSamples) {
  P2Quantile q(0.5);
  EXPECT_TRUE(std::isnan(q.value()));
  q.add(5.0);
  EXPECT_DOUBLE_EQ(q.value(), 5.0);
  q.add(1.0);
  q.add(9.0);
  // Fewer than 5 observations: value() is the exact percentile of what was
  // seen so far, same interpolation as util::percentile.
  EXPECT_DOUBLE_EQ(q.value(), percentile(std::vector<double>{5.0, 1.0, 9.0},
                                         50.0));
  EXPECT_EQ(q.count(), 3u);
  EXPECT_DOUBLE_EQ(q.quantile(), 0.5);
}

TEST(Stats, P2QuantileTracksUniformStream) {
  // P² against ground truth on a uniform stream: the sketch holds 5 markers
  // total, the exact answer needs all 20k samples.
  Rng rng(404);
  P2Quantile p50(0.5), p95(0.95), p99(0.99);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform(0.0, 100.0);
    xs.push_back(x);
    p50.add(x);
    p95.add(x);
    p99.add(x);
  }
  EXPECT_NEAR(p50.value(), percentile(xs, 50.0), 1.0);
  EXPECT_NEAR(p95.value(), percentile(xs, 95.0), 1.0);
  EXPECT_NEAR(p99.value(), percentile(xs, 99.0), 1.0);
}

TEST(Stats, P2QuantileTracksHeavyTailedStream) {
  // The population's exec times are log-normal; the latency sketches must
  // stay accurate in relative terms on that shape, not just on uniforms.
  Rng rng(405);
  P2Quantile p50(0.5), p95(0.95);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.lognormal(0.0, 1.1);
    xs.push_back(x);
    p50.add(x);
    p95.add(x);
  }
  EXPECT_NEAR(p50.value(), percentile(xs, 50.0), 0.05 * percentile(xs, 50.0));
  EXPECT_NEAR(p95.value(), percentile(xs, 95.0), 0.10 * percentile(xs, 95.0));
}

TEST(Stats, P2QuantileRejectsDegenerateQuantiles) {
  EXPECT_THROW(P2Quantile{0.0}, std::invalid_argument);
  EXPECT_THROW(P2Quantile{1.0}, std::invalid_argument);
  EXPECT_THROW(P2Quantile{-0.5}, std::invalid_argument);
}

TEST(Bytes, RoundTripAllTypes) {
  ByteWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(3.14159);
  w.f32(-2.5f);
  w.str("papaya");
  w.floats(std::vector<float>{1.0f, -1.0f, 0.5f});

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_FLOAT_EQ(r.f32(), -2.5f);
  EXPECT_EQ(r.str(), "papaya");
  const auto floats = r.floats();
  ASSERT_EQ(floats.size(), 3u);
  EXPECT_FLOAT_EQ(floats[1], -1.0f);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, TruncatedReadThrows) {
  ByteWriter w;
  w.u32(42);
  ByteReader r(w.data());
  EXPECT_EQ(r.u32(), 42u);
  EXPECT_THROW(r.u8(), std::out_of_range);
}

TEST(Bytes, TruncatedLengthPrefixThrows) {
  ByteWriter w;
  w.u64(1000);  // claims 1000 bytes follow, but none do
  ByteReader r(w.data());
  EXPECT_THROW(r.bytes(), std::out_of_range);
}

TEST(Log, DefaultLevelSuppressesInfo) {
  CapturingLogSink sink(LogLevel::kWarning);
  PAPAYA_LOG(LogLevel::kInfo) << "quiet";
  PAPAYA_LOG(LogLevel::kWarning) << "loud";
  ASSERT_EQ(sink.records().size(), 1u);
  EXPECT_EQ(sink.records()[0].message, "loud");
  EXPECT_EQ(sink.records()[0].level, LogLevel::kWarning);
}

TEST(Log, StreamFormattingComposes) {
  CapturingLogSink sink;
  PAPAYA_LOG(LogLevel::kError) << "task " << 7 << " failed at " << 1.5 << "s";
  ASSERT_EQ(sink.records().size(), 1u);
  EXPECT_EQ(sink.records()[0].message, "task 7 failed at 1.5s");
}

TEST(Log, CapturingSinkRestoresPreviousBehaviour) {
  Logger::instance().set_level(LogLevel::kError);
  {
    CapturingLogSink sink(LogLevel::kDebug);
    PAPAYA_LOG(LogLevel::kDebug) << "captured";
    EXPECT_TRUE(sink.contains("captured"));
  }
  EXPECT_EQ(Logger::instance().level(), LogLevel::kError);
  Logger::instance().set_level(LogLevel::kWarning);  // restore default
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(to_string(LogLevel::kWarning), "WARN");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
}

TEST(Bytes, ConstantTimeEqual) {
  const Bytes a{1, 2, 3};
  const Bytes b{1, 2, 3};
  const Bytes c{1, 2, 4};
  const Bytes d{1, 2};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, d));
}

TEST(Bytes, ToHex) {
  const Bytes b{0x00, 0xff, 0x1a};
  EXPECT_EQ(to_hex(b), "00ff1a");
}

}  // namespace
}  // namespace papaya::util
