// Example: how over-selection biases the trained model against slow,
// data-rich clients (Sec. 7.4 at example scale).
//
// Trains the same task three ways under one update budget and evaluates the
// final model on the test data of data-rich clients (the ones over-selection
// tends to drop, because slowness correlates with data volume).
//
//   $ ./fairness_bias

#include <cstdio>

#include "sim/fl_simulator.hpp"
#include "util/stats.hpp"

namespace {

using namespace papaya;

sim::SimulationConfig make_config(fl::TrainingMode mode, double over_selection,
                                  std::size_t goal) {
  sim::SimulationConfig cfg;
  cfg.task.name = "lm";
  cfg.task.mode = mode;
  cfg.task.aggregation_goal = goal;
  cfg.task.concurrency =
      mode == fl::TrainingMode::kAsync
          ? 104
          : fl::TaskConfig::over_selected_cohort(goal, over_selection);
  cfg.task.client_timeout_s = 240.0;
  cfg.population.num_devices = 800;
  cfg.population.seed = 9;
  cfg.corpus.vocab_size = 64;
  cfg.model.vocab_size = 64;
  cfg.model.embed_dim = 12;
  cfg.model.hidden_dim = 24;
  cfg.model.context = 2;
  cfg.trainer.compute_losses = false;
  cfg.server_opt.lr = 0.05f;
  cfg.max_applied_updates = 4000;
  cfg.max_sim_time_s = 1.0e7;
  cfg.eval_every_steps = 50;
  cfg.seed = 9;
  cfg.record_participations = true;
  return cfg;
}

}  // namespace

int main() {
  std::printf("correlation check: slowness vs data volume in the fleet\n");
  {
    const sim::DevicePopulation pop(make_config(fl::TrainingMode::kAsync, 0, 13).population);
    std::vector<double> slowness, examples;
    for (const auto& d : pop.devices()) {
      slowness.push_back(std::log(d.hardware_factor));
      examples.push_back(static_cast<double>(d.num_examples));
    }
    std::printf("  pearson(log slowness, #examples) = %.2f\n\n",
                util::pearson(slowness, examples));
  }

  struct Run {
    const char* name;
    sim::SimulationConfig cfg;
  };
  const std::vector<Run> runs{
      {"SyncFL w/ OS", make_config(fl::TrainingMode::kSync, 0.3, 80)},
      {"AsyncFL", make_config(fl::TrainingMode::kAsync, 0.0, 13)},
  };

  std::printf("%-14s %-16s %-16s %-14s\n", "method", "ppl (all test)",
              "ppl (data-rich)", "dropped slow?");
  for (const Run& run : runs) {
    sim::FlSimulator simulator(run.cfg);
    const sim::SimulationResult result = simulator.run();

    // Evaluate on pooled test data and on the data-rich quartile.
    const auto& pop = simulator.population();
    std::vector<double> volumes;
    for (const auto& d : pop.devices()) {
      volumes.push_back(static_cast<double>(d.num_examples));
    }
    const double p75 = util::percentile(volumes, 75.0);
    std::vector<ml::Sequence> all_test, rich_test;
    std::size_t sampled = 0;
    for (const auto& d : pop.devices()) {
      if (sampled++ >= 500) break;
      const auto data = simulator.corpus().client_dataset(d.id, d.num_examples);
      all_test.insert(all_test.end(), data.test.begin(), data.test.end());
      if (static_cast<double>(d.num_examples) >= p75) {
        rich_test.insert(rich_test.end(), data.test.begin(), data.test.end());
      }
    }
    const auto model = simulator.make_model_with_params(result.final_model);

    // Compare exec-time means of contributing vs all completing clients.
    std::vector<double> applied_times, all_times;
    for (const auto& p : result.participations) {
      if (p.dropped_out) continue;
      all_times.push_back(p.exec_time_s);
      if (p.update_applied) applied_times.push_back(p.exec_time_s);
    }
    std::printf("%-14s %-16.2f %-16.2f mean exec %4.0fs vs %4.0fs\n", run.name,
                model->perplexity(all_test), model->perplexity(rich_test),
                util::mean(applied_times), util::mean(all_times));
  }
  std::printf(
      "\nOver-selection's contributing clients are faster than the completing\n"
      "population (it discards stragglers), and its data-rich perplexity "
      "suffers;\nAsyncFL contributes everyone and serves data-rich clients "
      "better.\n");
  return 0;
}
