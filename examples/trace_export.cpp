// Export a simulation run's traces to CSV — the plotting interface behind
// the figure benches.
//
//   $ ./trace_export [output_dir]      (default: current directory)
//
// Runs a short AsyncFL training, then writes loss_curve.csv,
// active_clients.csv, participations.csv, and summary.csv, ready for any
// plotting tool.

#include <cstdio>
#include <fstream>
#include <string>

#include "sim/fl_simulator.hpp"
#include "sim/trace_export.hpp"

namespace {

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  out << contents;
  std::printf("  wrote %-22s (%zu bytes)\n", path.c_str(), contents.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace papaya;

  const std::string dir = argc > 1 ? std::string(argv[1]) + "/" : "./";

  sim::SimulationConfig cfg;
  cfg.task.name = "next-word-lm";
  cfg.task.mode = fl::TrainingMode::kAsync;
  cfg.task.concurrency = 32;
  cfg.task.aggregation_goal = 8;
  cfg.population.num_devices = 300;
  cfg.corpus.vocab_size = 64;
  cfg.model.vocab_size = 64;
  cfg.model.embed_dim = 10;
  cfg.model.hidden_dim = 16;
  cfg.trainer.compute_losses = false;
  cfg.server_opt.lr = 0.05f;
  cfg.max_server_steps = 60;
  cfg.eval_every_steps = 5;
  cfg.record_utilization = true;
  cfg.seed = 9;

  std::printf("running AsyncFL (concurrency %zu, K %zu) ...\n",
              cfg.task.concurrency, cfg.task.aggregation_goal);
  sim::FlSimulator simulator(cfg);
  const sim::SimulationResult result = simulator.run();
  std::printf("done: %llu server steps, final loss %.4f\n\n",
              static_cast<unsigned long long>(result.server_steps),
              result.final_eval_loss);

  const sim::SimulationTraces traces = sim::export_traces(result);
  write_file(dir + "loss_curve.csv", sim::to_csv(traces.loss_curve));
  write_file(dir + "active_clients.csv", sim::to_csv(traces.active_clients));
  write_file(dir + "participations.csv", sim::to_csv(traces.participations));
  write_file(dir + "summary.csv", sim::to_csv(traces.summary));

  std::printf(
      "\nplot loss_curve.csv for the Fig. 12-style training curve and\n"
      "active_clients.csv for the Fig. 7 utilization series.\n");
  return 0;
}
