// The client participation protocol, message by message (Sec. 6.1): a
// virtual session carries one client through selection -> download ->
// training -> report -> chunked upload, surviving a transient disconnect
// along the way.
//
//   $ ./client_protocol

#include <cstdio>

#include "fl/aggregator.hpp"
#include "fl/chunking.hpp"
#include "fl/client_runtime.hpp"
#include "fl/session.hpp"
#include "ml/dataset.hpp"
#include "ml/model.hpp"

int main() {
  using namespace papaya;

  // Server side: one Aggregator owning one async task.
  fl::Aggregator aggregator("agg-0");
  fl::TaskConfig task;
  task.name = "next-word-lm";
  task.mode = fl::TrainingMode::kAsync;
  task.concurrency = 8;
  task.aggregation_goal = 1;
  // Fold uploads across 4 consistent-hashed aggregation shards (Sec. 6.3).
  task.aggregator_shards = 4;

  ml::LmConfig model_cfg;
  model_cfg.vocab_size = 32;
  model_cfg.embed_dim = 8;
  model_cfg.hidden_dim = 12;
  model_cfg.context = 2;
  util::Rng init_rng(1);
  auto model = ml::make_mlp_lm(model_cfg, init_rng);
  task.model_size = model->num_params();
  aggregator.assign_task(task, std::vector<float>(model->params().begin(),
                                                  model->params().end()),
                         {});

  fl::VirtualSessionManager::Options session_opts;
  session_opts.session_ttl_s = 300.0;
  // Sessions are stamped with the aggregation shard the client's upload
  // stream hashes to (same ring as the task's ShardedAggregator).
  session_opts.aggregator_shards = task.aggregator_shards;
  fl::VirtualSessionManager sessions(session_opts);

  // Client side: a device with local data behind the Example Store.
  ml::CorpusConfig corpus_cfg;
  corpus_cfg.vocab_size = 32;
  ml::FederatedCorpus corpus(corpus_cfg, 7);
  fl::ExampleStore store(corpus.client_dataset(0, 40), 1000);
  std::printf("device holds %zu training examples\n",
              store.num_train_examples());

  // 1. Selection: join + session establishment.
  double now = 0.0;
  const auto join = aggregator.client_join(task.name, 101, now);
  const std::uint64_t token = sessions.open(101, now);
  std::printf(
      "[t=%3.0f] selected: accepted=%d model v%llu session %016llx "
      "(upload -> shard %zu/%zu)\n",
      now, join.accepted,
      static_cast<unsigned long long>(join.model_version),
      static_cast<unsigned long long>(token), sessions.lookup(token)->shard,
      task.aggregator_shards);

  // 2. Download.
  now += 2.0;
  (void)sessions.advance(token, fl::SessionStage::kDownloading, now);
  const std::vector<float> global = aggregator.model(task.name);
  std::printf("[t=%3.0f] downloaded %zu parameters\n", now, global.size());

  // 3. Local training (SGD, one epoch).
  now += 1.0;
  (void)sessions.advance(token, fl::SessionStage::kTraining, now);
  fl::TrainerConfig trainer;
  trainer.learning_rate = 0.3f;
  fl::Executor executor(model->clone(), trainer);
  util::Rng train_rng(42);
  const auto training =
      executor.train(global, join.model_version, 101, store, train_rng);
  now += 60.0;
  std::printf("[t=%3.0f] trained: loss %.4f -> %.4f\n", now,
              training.initial_loss, training.final_loss);

  // ...the device loses connectivity for 2 minutes mid-session (within both
  // the session TTL and the task's 4-minute client timeout)...
  now += 120.0;
  const auto resumed = sessions.touch(token, now);
  std::printf("[t=%3.0f] resumed after disconnect: %s\n", now,
              resumed == fl::SessionOutcome::kOk ? "session intact" : "LOST");

  // 4. Report, then upload in CRC-checked chunks.
  (void)sessions.advance(token, fl::SessionStage::kReporting, now);
  (void)sessions.advance(token, fl::SessionStage::kUploading, now + 1.0);
  const util::Bytes serialized = training.update.serialize();
  const auto chunks = fl::chunk_upload(token, serialized, 256);
  fl::ChunkAssembler assembler(token);
  for (const auto& chunk : chunks) {
    (void)assembler.accept(fl::UploadChunk::deserialize(chunk.serialize()));
  }
  now += 3.0;
  const auto report =
      aggregator.client_report(task.name, *assembler.assemble(), now);
  (void)sessions.complete(token, now);
  std::printf("[t=%3.0f] uploaded %zu chunks (%zu bytes): %s, server %s\n",
              now, chunks.size(), serialized.size(),
              report.outcome == fl::ReportOutcome::kAccepted ? "accepted"
                                                             : "rejected",
              report.server_stepped ? "stepped to v1" : "buffering");
  std::printf("\nsession final state: %s (%u resume%s)\n",
              fl::to_string(sessions.lookup(token)->stage),
              sessions.lookup(token)->resumes,
              sessions.lookup(token)->resumes == 1 ? "" : "s");
  return report.outcome == fl::ReportOutcome::kAccepted ? 0 : 1;
}
