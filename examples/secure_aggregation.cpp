// Example: the full Asynchronous SecAgg protocol, message by message.
//
// Walks the deployment story of Sec. 5 and Appendices B-C:
//   1. the operator logs the trusted binary in a verifiable log,
//   2. the TSA (simulated enclave) pre-generates attested DH initial
//      messages,
//   3. clients verify the attestation quote + log inclusion proof, mask
//      their updates with a seed-expanded one-time pad, and upload,
//   4. the untrusted server aggregates masked updates incrementally,
//   5. at the aggregation goal the TSA releases the unmasking vector once,
//   6. the server recovers ONLY the sum -- and a tampering attempt is shown
//      to be rejected.
//
//   $ ./secure_aggregation

#include <cstdio>

#include "secagg/secagg_client.hpp"
#include "secagg/secagg_server.hpp"
#include "util/rng.hpp"

int main() {
  using namespace papaya;

  const std::size_t model_size = 8;
  const std::size_t num_clients = 4;

  // --- Step 0: publish the trusted binary in the verifiable log.
  const crypto::Digest binary_hash =
      crypto::Sha256::hash(std::string("papaya-tsa-binary v1.2.0"));
  crypto::VerifiableLog log;
  const std::uint64_t leaf = log.append(binary_hash);
  std::printf("verifiable log: binary measurement logged at leaf %llu, "
              "root %.16s...\n",
              static_cast<unsigned long long>(leaf),
              util::to_hex(log.snapshot().root).c_str());

  // --- Step 1: the TSA boots inside the (simulated) enclave and publishes
  // attested DH initial messages.
  const crypto::DhParams& dh = crypto::DhParams::simulation256();
  const secagg::SimulatedEnclavePlatform platform(2024);
  secagg::SecAggParams params;
  params.vector_length = model_size;
  params.threshold = num_clients;  // t: minimum clients before release
  secagg::TrustedSecureAggregator tsa(dh, params, /*num_initial_messages=*/8,
                                      platform, binary_hash, /*seed=*/99);
  std::printf("TSA: %zu attested DH initial messages published\n",
              tsa.initial_messages().size());

  // --- Steps 2-4: clients verify, mask, and contribute.
  const secagg::FixedPointParams fp =
      secagg::FixedPointParams::for_budget(1.0, num_clients);
  const secagg::QuoteExpectations expectations{params.hash(dh),
                                               log.snapshot()};
  secagg::SecureAggregationSession session(tsa, model_size, num_clients);

  util::Rng rng(5);
  std::vector<float> true_sum(model_size, 0.0f);
  for (std::uint64_t c = 0; c < num_clients; ++c) {
    std::vector<float> update(model_size);
    for (auto& v : update) v = static_cast<float>(rng.uniform(-0.5, 0.5));
    for (std::size_t i = 0; i < model_size; ++i) true_sum[i] += update[i];

    secagg::SecAggClient client(dh, fp, /*client_seed=*/c);
    const auto contribution = client.prepare_contribution(
        platform, expectations, tsa.initial_messages().at(c),
        log.prove_inclusion(leaf), update);
    if (!contribution) {
      std::printf("client %llu: attestation verification FAILED, aborting\n",
                  static_cast<unsigned long long>(c));
      return 1;
    }
    const secagg::TsaAccept verdict = session.accept(*contribution);
    std::printf("client %llu: quote verified, masked update uploaded "
                "(TSA verdict: %s)\n",
                static_cast<unsigned long long>(c),
                verdict == secagg::TsaAccept::kAccepted ? "accepted"
                                                        : "rejected");
  }

  // --- A tampering attempt: the server flips a bit in a sealed seed.
  {
    secagg::SecAggClient attacker_view(dh, fp, 77);
    auto contribution = attacker_view.prepare_contribution(
        platform, expectations, tsa.initial_messages().at(num_clients),
        log.prove_inclusion(leaf), std::vector<float>(model_size, 0.1f));
    contribution->sealed_seed.ciphertext[20] ^= 0x01;
    const auto verdict = tsa.process_contribution(
        contribution->message_index, contribution->completing_message,
        contribution->sealed_seed, contribution->message_index);
    std::printf("tampered seed ciphertext: TSA verdict = %s\n",
                verdict == secagg::TsaAccept::kDecryptionFailed
                    ? "decryption failed (rejected)"
                    : "UNEXPECTEDLY ACCEPTED");
  }

  // --- Steps 5-6: unmask at the goal; the server learns only the sum.
  const auto sum = session.finalize_decoded(fp);
  if (!sum) {
    std::printf("TSA refused to release (below threshold?)\n");
    return 1;
  }
  std::printf("\n%-6s %-12s %-12s\n", "idx", "secure sum", "true sum");
  for (std::size_t i = 0; i < model_size; ++i) {
    std::printf("%-6zu %-12.5f %-12.5f\n", i, (*sum)[i], true_sum[i]);
  }
  std::printf("\nboundary traffic into TSA: %llu bytes over %llu calls "
              "(model is %zu bytes x %zu clients = %zu bytes that did NOT "
              "cross)\n",
              static_cast<unsigned long long>(tsa.boundary().bytes_in()),
              static_cast<unsigned long long>(tsa.boundary().calls()),
              model_size * 4, num_clients, model_size * 4 * num_clients);
  return 0;
}
