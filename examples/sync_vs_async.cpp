// Example: head-to-head SyncFL vs AsyncFL on the same device population.
//
// Demonstrates the paper's headline comparison at laptop scale: both modes
// train the same model on the same fleet; AsyncFL reaches the target loss
// faster, with steadier utilization and fewer wasted participations.
//
//   $ ./sync_vs_async

#include <cstdio>

#include "sim/fl_simulator.hpp"
#include "util/stats.hpp"

namespace {

using namespace papaya;

sim::SimulationConfig common_config() {
  sim::SimulationConfig cfg;
  cfg.task.name = "lm";
  cfg.task.client_timeout_s = 240.0;
  cfg.population.num_devices = 800;
  cfg.population.seed = 3;
  cfg.corpus.vocab_size = 64;
  cfg.model.vocab_size = 64;
  cfg.model.embed_dim = 12;
  cfg.model.hidden_dim = 24;
  cfg.model.context = 2;
  cfg.trainer.compute_losses = false;
  cfg.server_opt.lr = 0.05f;
  cfg.target_loss = 3.4;
  cfg.max_sim_time_s = 1.0e6;
  cfg.seed = 3;
  cfg.record_utilization = true;
  cfg.record_participations = false;
  return cfg;
}

void report(const char* name, const sim::SimulationResult& result,
            std::size_t concurrency) {
  std::vector<double> active;
  for (std::size_t i = 0; i < result.active_clients.size(); ++i) {
    if (result.active_clients.times[i] > result.end_time_s / 4.0) {
      active.push_back(result.active_clients.values[i]);
    }
  }
  std::printf("%-10s time-to-target %8.0f s   server steps %5llu   "
              "comm trips %6llu   utilization %5.1f%%\n",
              name, result.time_to_target_s,
              static_cast<unsigned long long>(result.server_steps),
              static_cast<unsigned long long>(result.comm_trips),
              active.empty() ? 0.0
                             : 100.0 * util::mean(active) /
                                   static_cast<double>(concurrency));
}

}  // namespace

int main() {
  const std::size_t concurrency = 104;

  // SyncFL: 30% over-selection around a goal of 80.
  sim::SimulationConfig sync_cfg = common_config();
  sync_cfg.task.mode = fl::TrainingMode::kSync;
  sync_cfg.task.aggregation_goal = 80;
  sync_cfg.task.concurrency = concurrency;
  sync_cfg.eval_every_steps = 1;
  sim::FlSimulator sync_sim(sync_cfg);
  const sim::SimulationResult sync_result = sync_sim.run();

  // AsyncFL: same concurrency, aggregation goal 13 (~12% of concurrency).
  sim::SimulationConfig async_cfg = common_config();
  async_cfg.task.mode = fl::TrainingMode::kAsync;
  async_cfg.task.aggregation_goal = 13;
  async_cfg.task.concurrency = concurrency;
  async_cfg.task.max_staleness = 100;
  async_cfg.eval_every_steps = 5;
  sim::FlSimulator async_sim(async_cfg);
  const sim::SimulationResult async_result = async_sim.run();

  std::printf("target loss %.2f at concurrency %zu over %zu devices\n\n",
              sync_cfg.target_loss, concurrency,
              sync_cfg.population.num_devices);
  report("SyncFL", sync_result, concurrency);
  report("AsyncFL", async_result, concurrency);

  if (sync_result.reached_target && async_result.reached_target) {
    std::printf("\nAsyncFL speedup: %.1fx   communication efficiency: %.1fx\n",
                sync_result.time_to_target_s / async_result.time_to_target_s,
                static_cast<double>(sync_result.comm_trips) /
                    static_cast<double>(async_result.comm_trips));
  }
  return 0;
}
