// SMPC secure aggregation baseline: run one synchronous Bonawitz-style
// round with dropouts at every stage, and verify the server recovers the
// exact survivor sum without ever seeing an individual update.
//
//   $ ./smpc_secagg
//
// This is the protocol PAPAYA's Sec. 5 contrasts with Asynchronous SecAgg:
// every client must be online across four synchronous legs, and share
// ciphertexts grow quadratically in the cohort.  Compare with the
// secure_aggregation example (the paper's TEE-based asynchronous protocol).

#include <cstdio>

#include "smpc/protocol.hpp"
#include "util/rng.hpp"

int main() {
  using namespace papaya;

  constexpr std::size_t kClients = 10;
  constexpr std::size_t kVectorLength = 16;

  smpc::SmpcConfig config;
  config.vector_length = kVectorLength;
  config.threshold = 6;  // the server may never release a sum of fewer

  // Each client holds a private vector over Z_2^32 (in PAPAYA these are
  // fixed-point-encoded model updates).
  util::Rng rng(2024);
  std::vector<secagg::GroupVec> inputs(kClients);
  for (auto& v : inputs) {
    v.resize(kVectorLength);
    for (auto& x : v) x = static_cast<std::uint32_t>(rng.next() % 1000);
  }

  // Inject dropouts at every vulnerable stage of the round:
  //  - client 3 vanishes before sharing its Shamir shares (simply excluded),
  //  - client 7 vanishes after sharing but before uploading (the hard case:
  //    everyone already masked with it, so the server must reconstruct its
  //    mask seed from the survivors' shares),
  //  - client 9 uploads but never answers the unmasking request.
  smpc::DropoutSchedule dropouts;
  dropouts.before_share_keys = {3};
  dropouts.before_masked_input = {7};
  dropouts.before_unmasking = {9};

  std::printf("running one SMPC SecAgg round: %zu clients, threshold %zu\n",
              kClients, config.threshold);
  std::printf("dropouts: #3 before ShareKeys, #7 before MaskedInput, #9 "
              "before Unmasking\n\n");

  const smpc::SmpcRoundResult result =
      smpc::run_smpc_round(config, inputs, dropouts, /*seed=*/7);

  std::printf("included clients:");
  for (const std::uint32_t id : result.included) std::printf(" %u", id);
  std::printf("\n");

  // Check against the plaintext sum of exactly the included clients.
  secagg::GroupVec expected(kVectorLength, 0);
  for (const std::uint32_t id : result.included) {
    secagg::add_in_place(expected, inputs[id - 1]);
  }
  const bool match = result.aggregate == expected;
  std::printf("aggregate matches plaintext survivor sum: %s\n",
              match ? "yes" : "NO");

  std::printf("\ntraffic: %.1f KB up, %.1f KB down, %llu messages, %d "
              "synchronous legs\n",
              result.traffic.client_to_server_bytes / 1024.0,
              result.traffic.server_to_client_bytes / 1024.0,
              static_cast<unsigned long long>(result.traffic.messages),
              smpc::SmpcTraffic::kSynchronousLegs);
  std::printf(
      "\nEvery leg is a synchronization barrier — this is why PAPAYA "
      "replaces\nSMPC SecAgg with the TEE-based asynchronous protocol "
      "(Sec. 5).\n");
  return match ? 0 : 1;
}
