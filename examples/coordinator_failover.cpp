// Coordinator failover walkthrough (App. E.4): a replicated Coordinator
// loses its leader mid-training; participating clients are unaffected, a
// new leader is elected, rebuilds its view during the recovery period, and
// client assignment resumes.
//
//   $ ./coordinator_failover

#include <cstdio>

#include "fl/aggregator.hpp"
#include "fl/election.hpp"
#include "fl/model_update.hpp"
#include "fl/selector.hpp"

int main() {
  using namespace papaya;

  // Three Coordinator replicas, two Aggregators, one async task.
  fl::CoordinatorGroup::Options options;
  options.election_timeout_s = 5.0;
  options.recovery_period_s = 30.0;
  fl::CoordinatorGroup group({"c1", "c2", "c3"}, options);

  fl::Aggregator agg_a("agg-a"), agg_b("agg-b");
  group.register_aggregator(agg_a, 0.0);
  group.register_aggregator(agg_b, 0.0);

  fl::TaskConfig task;
  task.name = "next-word-lm";
  task.mode = fl::TrainingMode::kAsync;
  task.concurrency = 8;
  task.aggregation_goal = 2;
  task.model_size = 4;
  group.submit_task(task, std::vector<float>(4, 0.0f), {}, 0.0);

  const std::string owner_id =
      group.assignment_map()->task_to_aggregator.at(task.name);
  fl::Aggregator& owner = owner_id == "agg-a" ? agg_a : agg_b;
  std::printf("t=0     leader %s placed '%s' on %s\n",
              group.leader_id().c_str(), task.name.c_str(), owner_id.c_str());

  // A Selector caches the routing map, and two clients join.
  fl::Selector selector("s1");
  selector.refresh(group.leader());
  (void)owner.client_join(task.name, 101, 1.0);
  (void)owner.client_join(task.name, 102, 1.0);

  // The leader dies at t=10.
  group.fail_leader(10.0);
  std::printf("t=10    leader c1 failed; assignments paused: %s\n",
              group.accepting_assignments(11.0) ? "no" : "yes");

  // Participating clients keep training and reporting through the cached
  // Selector route — App. E.4: "participating clients are not affected".
  fl::ModelUpdate u;
  u.client_id = 101;
  u.initial_version = 0;
  u.num_examples = 8;
  u.delta = {0.1f, 0.1f, 0.1f, 0.1f};
  const auto report = owner.client_report(task.name, u.serialize(), 12.0);
  std::printf("t=12    client 101 reports via cached route '%s': %s\n",
              selector.route(task.name)->c_str(),
              report.outcome == fl::ReportOutcome::kAccepted ? "accepted"
                                                             : "rejected");

  // After the election timeout, a follower takes over and recovers.
  group.tick(16.0);
  std::printf("t=16    new leader %s elected (term %llu); in recovery: %s\n",
              group.leader_id().c_str(),
              static_cast<unsigned long long>(group.term()),
              group.in_recovery(17.0) ? "yes" : "no");
  std::printf("t=20    assignment during recovery -> %s\n",
              group.assign_client({}, 20.0) ? "assigned" : "held");

  // Aggregators keep reporting; the new leader rebuilds demand from them.
  group.aggregator_report(owner.id(), owner.next_report_sequence(), 47.0,
                          {fl::TaskReport{task.name, 6, 0}});
  const auto assignment = group.assign_client({}, 48.0);
  std::printf("t=48    recovery over; client assigned to '%s' on %s\n",
              assignment->task.c_str(), assignment->aggregator_id.c_str());

  selector.refresh(group.leader());
  std::printf("\nrouting preserved across failover: %s\n",
              *selector.route(task.name) == owner_id ? "yes" : "NO");
  return 0;
}
