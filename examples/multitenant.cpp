// Example: multi-tenant server operation (Sec. 6.2-6.3, App. E.4).
//
// Runs the Coordinator / Selector / Aggregator components directly (no
// training) to demonstrate:
//   - workload-balanced task placement across Aggregators,
//   - capability-gated client assignment and demand pooling,
//   - Aggregator failure detection and task reassignment with the model
//     checkpoint surviving the move,
//   - Selector staleness and refresh.
//
//   $ ./multitenant

#include <cstdio>

#include "fl/coordinator.hpp"
#include "fl/selector.hpp"

int main() {
  using namespace papaya;

  fl::Aggregator agg_a("agg-a"), agg_b("agg-b");
  fl::Coordinator coordinator(/*seed=*/1);
  coordinator.register_aggregator(agg_a, 0.0);
  coordinator.register_aggregator(agg_b, 0.0);

  // Two tenants: a big LM task (any device) and a small ranking task that
  // requires a capability tag.
  fl::TaskConfig lm;
  lm.name = "keyboard-lm";
  lm.mode = fl::TrainingMode::kAsync;
  lm.concurrency = 1000;
  lm.aggregation_goal = 100;
  lm.model_size = 4096;
  coordinator.submit_task(lm, std::vector<float>(4096, 0.0f), {});

  fl::TaskConfig ranker;
  ranker.name = "feed-ranker";
  ranker.mode = fl::TrainingMode::kAsync;
  ranker.concurrency = 50;
  ranker.aggregation_goal = 10;
  ranker.model_size = 512;
  ranker.required_capability = "high-mem";
  coordinator.submit_task(ranker, std::vector<float>(512, 0.5f), {});

  const auto& map = coordinator.assignment_map();
  std::printf("placement: %s -> %s, %s -> %s (workload-balanced)\n",
              "keyboard-lm", map.task_to_aggregator.at("keyboard-lm").c_str(),
              "feed-ranker", map.task_to_aggregator.at("feed-ranker").c_str());

  // Selectors cache the assignment map.
  fl::Selector sel_1("sel-1"), sel_2("sel-2");
  sel_1.refresh(coordinator);
  sel_2.refresh(coordinator);

  // A low-end client is only eligible for the LM task; a high-mem client can
  // land on either.
  int lm_count = 0, ranker_count = 0;
  for (int i = 0; i < 40; ++i) {
    const auto assignment = coordinator.assign_client({{"high-mem"}});
    if (!assignment) break;
    coordinator.assignment_concluded(assignment->task);
    (assignment->task == "keyboard-lm" ? lm_count : ranker_count)++;
  }
  std::printf("40 high-mem clients assigned: %d to keyboard-lm, %d to "
              "feed-ranker (random over eligible tasks)\n",
              lm_count, ranker_count);
  const auto low_end = coordinator.assign_client({{"low-mem"}});
  std::printf("low-mem client -> %s\n",
              low_end ? low_end->task.c_str() : "(no eligible task)");
  if (low_end) coordinator.assignment_concluded(low_end->task);

  // Aggregator failure: only the healthy one heartbeats; the Coordinator
  // detects the failure and moves the tasks, Selectors notice staleness.
  const std::string failed_id =
      map.task_to_aggregator.at("keyboard-lm");
  fl::Aggregator& healthy = failed_id == "agg-a" ? agg_b : agg_a;
  coordinator.aggregator_report(healthy.id(), healthy.next_report_sequence(),
                                60.0, {});
  const auto failed = coordinator.detect_failures(60.0, /*timeout=*/30.0);
  std::printf("\nfailure detection: %s declared dead after missed "
              "heartbeats\n",
              failed.at(0).c_str());
  std::printf("keyboard-lm reassigned to %s (checkpointed model moved: "
              "feed-ranker[0] = %.1f)\n",
              coordinator.assignment_map().task_to_aggregator.at("keyboard-lm").c_str(),
              healthy.has_task("feed-ranker") ? healthy.model("feed-ranker")[0]
                                              : 0.5f);

  const bool stale_before = sel_1.is_stale(coordinator);
  sel_1.refresh(coordinator);
  const bool stale_after = sel_1.is_stale(coordinator);
  std::printf("selector sel-1 stale? %s -> refresh -> stale? %s\n",
              stale_before ? "yes" : "no", stale_after ? "yes" : "no");

  // Coordinator restart: soft state is rebuilt from Aggregator reports.
  coordinator.recover_from_aggregator_state(90.0);
  std::printf("after coordinator recovery, keyboard-lm owner: %s\n",
              coordinator.assignment_map().task_to_aggregator.at("keyboard-lm").c_str());
  return 0;
}
