// Quickstart: train a next-word-prediction model with asynchronous federated
// learning (FedBuff) over a simulated heterogeneous device fleet.
//
//   $ ./quickstart
//
// This walks the public API end to end: configure a task, a device
// population, and a model; run the simulator; inspect the loss curve and the
// system counters.

#include <cstdio>

#include "sim/fl_simulator.hpp"

int main() {
  using namespace papaya;

  sim::SimulationConfig cfg;

  // The FL task: asynchronous (FedBuff) with concurrency 64 and an
  // aggregation goal of 10 client updates per server step (the paper
  // recommends K at 10-30% of concurrency).
  cfg.task.name = "next-word-lm";
  cfg.task.mode = fl::TrainingMode::kAsync;
  cfg.task.concurrency = 64;
  cfg.task.aggregation_goal = 10;
  cfg.task.max_staleness = 50;
  cfg.task.client_timeout_s = 240.0;

  // A fleet of 600 simulated devices with log-normal execution times and
  // example counts correlated with slowness (Sec. 2 / Sec. 7.4 shape).
  cfg.population.num_devices = 600;
  cfg.population.seed = 42;

  // Model + data: a small MLP language model over a 64-token vocabulary of
  // synthetic non-IID client text.
  cfg.corpus.vocab_size = 64;
  cfg.model.vocab_size = 64;
  cfg.model.embed_dim = 12;
  cfg.model.hidden_dim = 24;
  cfg.model.context = 2;
  cfg.model_kind = sim::ModelKind::kMlp;

  // SGD on the client, FedAdam on the server (Sec. 7.1).
  cfg.trainer.learning_rate = 0.3f;
  cfg.trainer.batch_size = 32;
  cfg.trainer.compute_losses = false;
  cfg.server_opt.lr = 0.05f;

  cfg.max_server_steps = 120;
  cfg.eval_every_steps = 10;
  cfg.seed = 7;

  std::printf("training %s: concurrency=%zu K=%zu devices=%zu\n",
              cfg.task.name.c_str(), cfg.task.concurrency,
              cfg.task.aggregation_goal, cfg.population.num_devices);

  sim::FlSimulator simulator(cfg);
  const sim::SimulationResult result = simulator.run();

  std::printf("\n%-12s %-12s %-12s\n", "sim time (s)", "eval loss",
              "perplexity");
  for (std::size_t i = 0; i < result.loss_curve.size(); ++i) {
    std::printf("%-12.0f %-12.4f %-12.2f\n", result.loss_curve.times[i],
                result.loss_curve.values[i],
                std::exp(result.loss_curve.values[i]));
  }

  std::printf("\nserver steps:        %llu\n",
              static_cast<unsigned long long>(result.server_steps));
  std::printf("client updates:      %llu received, %llu applied\n",
              static_cast<unsigned long long>(result.task_stats.updates_received),
              static_cast<unsigned long long>(result.task_stats.updates_applied));
  std::printf("participations:      %llu started, %llu dropped/aborted\n",
              static_cast<unsigned long long>(result.participations_started),
              static_cast<unsigned long long>(result.task_stats.clients_failed +
                                              result.task_stats.clients_aborted));
  std::printf("final eval loss:     %.4f (perplexity %.2f)\n",
              result.final_eval_loss, std::exp(result.final_eval_loss));
  return 0;
}
