// Example: federated training with central differential privacy — the
// extension the paper's conclusion names as future work.
//
// Each client update is L2-clipped inside the aggregation pipeline, and the
// server adds Gaussian noise (stddev = noise_multiplier * clip / K) to every
// aggregated mean delta before the FedAdam step.  Sweeping the noise
// multiplier shows the privacy-utility trade-off.
//
//   $ ./dp_training

#include <cstdio>

#include "sim/fl_simulator.hpp"

int main() {
  using namespace papaya;

  std::printf("central DP on AsyncFL: clip 5.0, 1500-update budget\n\n");
  std::printf("%-18s %-12s %-12s\n", "noise multiplier", "eval loss",
              "perplexity");

  for (const float noise : {0.0f, 0.02f, 0.05f, 0.1f, 0.3f}) {
    sim::SimulationConfig cfg;
    cfg.task.name = "dp-lm";
    cfg.task.mode = fl::TrainingMode::kAsync;
    cfg.task.concurrency = 64;
    cfg.task.aggregation_goal = 10;
    cfg.task.dp.enabled = true;
    cfg.task.dp.clip_norm = 5.0f;
    cfg.task.dp.noise_multiplier = noise;

    cfg.population.num_devices = 500;
    cfg.population.seed = 4;
    cfg.corpus.vocab_size = 64;
    cfg.model.vocab_size = 64;
    cfg.model.embed_dim = 12;
    cfg.model.hidden_dim = 24;
    cfg.model.context = 2;
    cfg.trainer.compute_losses = false;
    cfg.server_opt.lr = 0.05f;

    cfg.max_applied_updates = 1500;
    cfg.max_sim_time_s = 1.0e6;
    cfg.eval_every_steps = 50;
    cfg.seed = 4;
    cfg.record_participations = false;

    sim::FlSimulator simulator(cfg);
    const sim::SimulationResult result = simulator.run();
    std::printf("%-18.2f %-12.4f %-12.2f\n", noise, result.final_eval_loss,
                std::exp(result.final_eval_loss));
  }

  std::printf(
      "\nHigher noise multipliers buy stronger differential-privacy\n"
      "guarantees at the cost of model quality; clipping alone (0.00 row)\n"
      "is nearly free.  Combine with SecAgg (task.secagg_enabled) so the\n"
      "server never sees an individual update in the clear at all.\n");
  return 0;
}
